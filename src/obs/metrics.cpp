#include "src/obs/metrics.h"

#include <cinttypes>
#include <cstdio>

#include "src/util/serde.h"

namespace atom {
namespace obs {

// ---------------------------------------------------------------- Pow2Hist

double Pow2Hist::Percentile(double q) const {
  uint64_t total = Total();
  if (total == 0) {
    return 0;
  }
  uint64_t want = static_cast<uint64_t>(q * static_cast<double>(total));
  uint64_t seen = 0;
  for (size_t b = 0; b < kLatencyBuckets; b++) {
    seen += buckets[b];
    if (seen > want) {
      return static_cast<double>(uint64_t{1} << (b + 1));
    }
  }
  return static_cast<double>(uint64_t{1} << kLatencyBuckets);
}

// --------------------------------------------------------------- Histogram

size_t Histogram::ShardIndex() {
  // Threads take shards round-robin on first observe; the index is per
  // thread, not per histogram, which keeps the lookup to one TLS read and
  // still spreads any set of concurrently-observing threads evenly.
  static std::atomic<size_t> next_shard{0};
  thread_local size_t index =
      next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return index;
}

Pow2Hist Histogram::Snapshot() const {
  Pow2Hist out;
  for (const Shard& shard : shards_) {
    for (size_t b = 0; b < kLatencyBuckets; b++) {
      out.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    out.sum += shard.sum.load(std::memory_order_relaxed);
  }
  return out;
}

// ------------------------------------------------------------ timing gate

namespace {
std::atomic<bool> g_timing_enabled{false};
}  // namespace

bool TimingEnabled() {
  return g_timing_enabled.load(std::memory_order_relaxed);
}

void SetTimingEnabled(bool enabled) {
  g_timing_enabled.store(enabled, std::memory_order_relaxed);
}

// ------------------------------------------------------- MetricsSnapshot

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, value] : other.gauges) {
    auto [it, inserted] = gauges.try_emplace(name, value);
    if (!inserted && value > it->second) {
      it->second = value;  // gauges are depths/peaks: fleet max
    }
  }
  for (const auto& [name, hist] : other.histograms) {
    histograms[name].Merge(hist);
  }
}

namespace {

// Splices an extra label into a series name that may already carry a
// label set: name{a="1"} + le="4" -> name{a="1",le="4"}.
std::string WithLabel(const std::string& name, const std::string& label) {
  if (!name.empty() && name.back() == '}') {
    return name.substr(0, name.size() - 1) + "," + label + "}";
  }
  return name + "{" + label + "}";
}

// Splits name{labels} so histogram expansion can suffix the base name
// (Prometheus wants name_bucket{...}, not name{...}_bucket).
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  size_t brace = name.find('{');
  if (brace == std::string::npos) {
    *base = name;
    labels->clear();
  } else {
    *base = name.substr(0, brace);
    *labels = name.substr(brace);  // includes the braces
  }
}

void AppendLine(std::string* out, const std::string& series,
                uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  *out += series;
  *out += ' ';
  *out += buf;
  *out += '\n';
}

}  // namespace

std::string MetricsSnapshot::Exposition() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    AppendLine(&out, name, value);
  }
  for (const auto& [name, value] : gauges) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, value);
    out += name;
    out += ' ';
    out += buf;
    out += '\n';
  }
  for (const auto& [name, hist] : histograms) {
    std::string base, labels;
    SplitLabels(name, &base, &labels);
    uint64_t cumulative = 0;
    for (size_t b = 0; b < kLatencyBuckets; b++) {
      if (hist.buckets[b] == 0) {
        continue;  // sparse: power-of-two buckets are mostly empty
      }
      cumulative = 0;
      for (size_t i = 0; i <= b; i++) {
        cumulative += hist.buckets[i];
      }
      char le[40];
      std::snprintf(le, sizeof(le), "le=\"%llu\"",
                    static_cast<unsigned long long>(uint64_t{1} << (b + 1)));
      AppendLine(&out, WithLabel(base + "_bucket" + labels, le), cumulative);
    }
    AppendLine(&out, WithLabel(base + "_bucket" + labels, "le=\"+Inf\""),
               hist.Total());
    AppendLine(&out, base + "_sum" + labels, hist.sum);
    AppendLine(&out, base + "_count" + labels, hist.Total());
  }
  return out;
}

// --------------------------------------------------------- snapshot codec

namespace {

void WriteName(ByteWriter* w, const std::string& name) {
  w->Var(BytesView(reinterpret_cast<const uint8_t*>(name.data()),
                   name.size()));
}

std::optional<std::string> ReadName(ByteReader* r) {
  auto bytes = r->Var();
  if (!bytes) {
    return std::nullopt;
  }
  // Series names are human-authored identifiers; cap hard so a hostile
  // length cannot balloon the decode.
  if (bytes->size() > 1024) {
    return std::nullopt;
  }
  return std::string(bytes->begin(), bytes->end());
}

// A snapshot from one process holds at most a few hundred series; 1<<16
// is far above any honest registry and far below an allocation hazard.
constexpr uint32_t kMaxSeries = 1 << 16;

}  // namespace

Bytes EncodeMetricsSnapshot(const MetricsSnapshot& snapshot) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(snapshot.counters.size()));
  for (const auto& [name, value] : snapshot.counters) {
    WriteName(&w, name);
    w.U64(value);
  }
  w.U32(static_cast<uint32_t>(snapshot.gauges.size()));
  for (const auto& [name, value] : snapshot.gauges) {
    WriteName(&w, name);
    w.U64(static_cast<uint64_t>(value));
  }
  w.U32(static_cast<uint32_t>(snapshot.histograms.size()));
  for (const auto& [name, hist] : snapshot.histograms) {
    WriteName(&w, name);
    w.U64(hist.sum);
    // Sparse bucket encoding: (index, count) pairs — most of the 48
    // buckets are empty in practice.
    uint32_t nonzero = 0;
    for (uint64_t c : hist.buckets) {
      nonzero += c != 0 ? 1 : 0;
    }
    w.U32(nonzero);
    for (size_t b = 0; b < kLatencyBuckets; b++) {
      if (hist.buckets[b] != 0) {
        w.U8(static_cast<uint8_t>(b));
        w.U64(hist.buckets[b]);
      }
    }
  }
  return w.Take();
}

std::optional<MetricsSnapshot> DecodeMetricsSnapshot(BytesView bytes) {
  ByteReader r(bytes);
  MetricsSnapshot out;
  auto n_counters = r.U32();
  if (!n_counters || *n_counters > kMaxSeries) {
    return std::nullopt;
  }
  for (uint32_t i = 0; i < *n_counters; i++) {
    auto name = ReadName(&r);
    auto value = r.U64();
    if (!name || !value) {
      return std::nullopt;
    }
    out.counters[*name] = *value;
  }
  auto n_gauges = r.U32();
  if (!n_gauges || *n_gauges > kMaxSeries) {
    return std::nullopt;
  }
  for (uint32_t i = 0; i < *n_gauges; i++) {
    auto name = ReadName(&r);
    auto value = r.U64();
    if (!name || !value) {
      return std::nullopt;
    }
    out.gauges[*name] = static_cast<int64_t>(*value);
  }
  auto n_hists = r.U32();
  if (!n_hists || *n_hists > kMaxSeries) {
    return std::nullopt;
  }
  for (uint32_t i = 0; i < *n_hists; i++) {
    auto name = ReadName(&r);
    auto sum = r.U64();
    auto nonzero = r.U32();
    if (!name || !sum || !nonzero || *nonzero > kLatencyBuckets) {
      return std::nullopt;
    }
    Pow2Hist hist;
    hist.sum = *sum;
    for (uint32_t b = 0; b < *nonzero; b++) {
      auto index = r.U8();
      auto count = r.U64();
      if (!index || !count || *index >= kLatencyBuckets) {
        return std::nullopt;
      }
      hist.buckets[*index] = *count;
    }
    out.histograms[*name] = hist;
  }
  if (!r.Done()) {
    return std::nullopt;  // trailing bytes: reject, like the control plane
  }
  return out;
}

// ---------------------------------------------------------------- Registry

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, counter] : counters_) {
    out.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    out.gauges[name] = gauge->Value();
  }
  for (const auto& [name, hist] : histograms_) {
    out.histograms[name] = hist->Snapshot();
  }
  return out;
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // never destroyed: handles
  return *registry;                            // outlive static teardown
}

}  // namespace obs
}  // namespace atom
