// Fleet observability, part 1: the metrics plane. One process-global
// Registry of named counters, gauges, and power-of-two latency histograms
// that every layer (ThreadPool, RoundEngine, TcpPeerMesh, gateways,
// streaming intake) feeds. Design constraints, in order:
//
//  * Hot-path writes are lock-free: counters and gauges are single relaxed
//    atomics; histograms stripe their buckets across cache-line-aligned
//    shards so concurrent observers from different threads rarely collide.
//    Registration (name -> handle) takes a mutex, so call sites look up
//    their handles once and cache the pointer — handles live as long as
//    the registry (nothing is ever deleted), which for Global() is the
//    process lifetime.
//
//  * Timing instrumentation is gated: counters are cheap enough to stay
//    always-on, but anything that samples a clock (task dwell, epoll wait
//    latency, phase histograms) checks TimingEnabled() first — a single
//    relaxed atomic load — so the disabled path costs one predictable
//    branch.
//
//  * Everything is aggregate-only. Metric names may carry structural
//    labels (peer id, pool class, reactor loop) but NEVER a client
//    identity, and no series is keyed to an individual submission — the
//    telemetry must not narrow the anonymity set the mix-net provides.
//
// Snapshots of a registry serialize (EncodeMetricsSnapshot) and merge
// (MergeFrom), which is how the kMetricsSnapshot control frame turns a
// fleet of per-process registries into one view, and how the Prometheus
// text exposition (--metrics-port / --metrics-out) is produced.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "src/util/bytes.h"

namespace atom {
namespace obs {

// ---------------------------------------------------------------- Pow2Hist

// Bucket count shared by every latency histogram in the project; bucket b
// covers [2^b, 2^(b+1)) in the caller's unit (microseconds everywhere in
// this codebase). 48 buckets span 1us .. ~8.9 years, i.e. "never clips".
// Factored out of bench_ingest.cpp's inline histogram so the bench and
// the registry share one implementation.
inline constexpr size_t kLatencyBuckets = 48;

// A plain (non-atomic) power-of-two histogram: the merge/percentile value
// type. Observe on one thread, or Merge snapshots from many.
struct Pow2Hist {
  std::array<uint64_t, kLatencyBuckets> buckets{};
  uint64_t sum = 0;  // sum of observed values (exposition _sum line)

  // Bucket index for a value: floor(log2(max(v,1))), clipped to the top
  // bucket. Identical math to the bench's inline version.
  static size_t BucketFor(uint64_t value) {
    return std::min<size_t>(
        kLatencyBuckets - 1,
        static_cast<size_t>(std::bit_width(value | 1)) - 1);
  }

  void Observe(uint64_t value) {
    buckets[BucketFor(value)]++;
    sum += value;
  }

  void Merge(const Pow2Hist& other) {
    for (size_t b = 0; b < kLatencyBuckets; b++) {
      buckets[b] += other.buckets[b];
    }
    sum += other.sum;
  }

  uint64_t Total() const {
    uint64_t total = 0;
    for (uint64_t c : buckets) {
      total += c;
    }
    return total;
  }

  // Upper-edge estimate of quantile q in [0,1]: the exclusive upper bound
  // 2^(b+1) of the first bucket where the running count exceeds q*total.
  // 0 when empty. Matches the bench's historical percentile semantics.
  double Percentile(double q) const;
};

// ----------------------------------------------------- atomic instruments

// Monotonic counter. Relaxed atomics: totals are exact (fetch_add), only
// cross-counter ordering is unspecified, which aggregate telemetry never
// needs.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Point-in-time signed value (queue depth, occupancy) with a lock-free
// running-max variant for peaks.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  // Raises the gauge to v if v is larger (CAS loop; lock-free peaks).
  void UpdateMax(int64_t v) {
    int64_t cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Concurrent Pow2Hist: buckets striped across cache-line-aligned shards,
// each thread pinned to one shard (round-robin at first observe), every
// slot a relaxed atomic. Observe never locks; Snapshot merges the shards
// into a plain Pow2Hist. Totals are exact; a snapshot taken concurrently
// with observers is a momentary cut, which is all a scrape needs.
class Histogram {
 public:
  void Observe(uint64_t value) {
    Shard& s = shards_[ShardIndex()];
    s.buckets[Pow2Hist::BucketFor(value)].fetch_add(
        1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }

  Pow2Hist Snapshot() const;

 private:
  static constexpr size_t kShards = 8;
  struct alignas(64) Shard {
    std::array<std::atomic<uint64_t>, kLatencyBuckets> buckets{};
    std::atomic<uint64_t> sum{0};
  };
  static size_t ShardIndex();

  std::array<Shard, kShards> shards_;
};

// ------------------------------------------------------------ timing gate

// Gates every clock-sampling instrumentation point (histogram timings).
// Off by default: the disabled path is one relaxed load + branch.
bool TimingEnabled();
void SetTimingEnabled(bool enabled);

// ----------------------------------------------------------- MetricsSnapshot

// A registry frozen into plain values: what travels inside the
// kMetricsSnapshot control frame and what MergeFrom aggregates into the
// fleet-wide view. Counter/histogram series with the same name sum;
// gauges take the max (every gauge in this codebase is a depth/peak,
// where max is the meaningful fleet aggregate).
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, int64_t> gauges;
  std::map<std::string, Pow2Hist> histograms;

  void MergeFrom(const MetricsSnapshot& other);

  // Prometheus-style text exposition. Histogram series expand into
  // cumulative <name>_bucket{le="..."} lines plus _sum and _count; a
  // label set already present in the name is spliced with the le label.
  std::string Exposition() const;
};

// Little-endian snapshot codec (the kMetricsSnapshot payload). Decode is
// hostile-input safe: every count is bounds-checked against the remaining
// bytes before allocation, like the rest of the control plane.
Bytes EncodeMetricsSnapshot(const MetricsSnapshot& snapshot);
std::optional<MetricsSnapshot> DecodeMetricsSnapshot(BytesView bytes);

// ---------------------------------------------------------------- Registry

// Named instrument directory. Get* registers on first use and returns a
// stable pointer (instruments are never deleted); names follow Prometheus
// conventions and may carry a label set inline:
//
//   registry.GetCounter("atom_mesh_bytes_sent_total{peer=\"4\"}")
//
// Lookup takes a mutex — call sites resolve once and cache the pointer.
class Registry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  std::string ExpositionText() const { return Snapshot().Exposition(); }

  // The process-wide registry every subsystem feeds; what kMetricsSnapshot
  // exports and --metrics-port serves.
  static Registry& Global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace atom

#endif  // SRC_OBS_METRICS_H_
