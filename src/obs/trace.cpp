#include "src/obs/trace.h"

#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <vector>

namespace atom {
namespace obs {

namespace {

using Clock = std::chrono::steady_clock;

struct Collector {
  std::mutex mu;
  std::vector<TraceEvent> events;
  Clock::time_point epoch = Clock::now();
  bool epoch_pinned = false;
};

Collector& GetCollector() {
  static Collector* collector = new Collector();  // outlives static teardown
  return *collector;
}

uint32_t ThreadOrdinal() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

std::atomic<bool> Trace::enabled_{false};

void Trace::Enable() {
  Collector& c = GetCollector();
  {
    std::lock_guard<std::mutex> lock(c.mu);
    if (!c.epoch_pinned) {
      c.epoch = Clock::now();
      c.epoch_pinned = true;
    }
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void Trace::Disable() { enabled_.store(false, std::memory_order_relaxed); }

void Trace::Clear() {
  Collector& c = GetCollector();
  std::lock_guard<std::mutex> lock(c.mu);
  c.events.clear();
}

size_t Trace::EventCount() {
  Collector& c = GetCollector();
  std::lock_guard<std::mutex> lock(c.mu);
  return c.events.size();
}

int64_t Trace::NowUs() {
  Collector& c = GetCollector();
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               c.epoch)
      .count();
}

void Trace::Emit(const TraceEvent& event) {
  if (!Enabled()) {
    return;  // raced a Disable between span start and end: drop quietly
  }
  Collector& c = GetCollector();
  TraceEvent copy = event;
  copy.tid = ThreadOrdinal();
  std::lock_guard<std::mutex> lock(c.mu);
  // Span volume is phase-granular (hundreds per round, not per-message);
  // the cap is a backstop so a forgotten Enable in a long-running process
  // cannot grow without bound.
  if (c.events.size() < (size_t{1} << 20)) {
    c.events.push_back(copy);
  }
}

std::string Trace::ToJson() {
  Collector& c = GetCollector();
  std::vector<TraceEvent> events;
  {
    std::lock_guard<std::mutex> lock(c.mu);
    events = c.events;
  }
  long pid = static_cast<long>(getpid());
  std::string out = "{\"traceEvents\":[";
  char buf[256];
  for (size_t i = 0; i < events.size(); i++) {
    const TraceEvent& e = events[i];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                  "\"ts\":%lld,\"dur\":%lld,\"pid\":%ld,\"tid\":%u",
                  i == 0 ? "" : ",", e.name, e.cat,
                  static_cast<long long>(e.ts_us),
                  static_cast<long long>(e.dur_us), pid, e.tid);
    out += buf;
    out += ",\"args\":{";
    std::snprintf(buf, sizeof(buf), "\"round\":%llu",
                  static_cast<unsigned long long>(e.round_id));
    out += buf;
    if (e.k0 != nullptr) {
      std::snprintf(buf, sizeof(buf), ",\"%s\":%llu", e.k0,
                    static_cast<unsigned long long>(e.v0));
      out += buf;
    }
    if (e.k1 != nullptr) {
      std::snprintf(buf, sizeof(buf), ",\"%s\":%llu", e.k1,
                    static_cast<unsigned long long>(e.v1));
      out += buf;
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

bool Trace::WriteTo(const std::string& path) {
  std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  size_t written = std::fwrite(json.data(), 1, json.size(), f);
  bool ok = written == json.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

// ------------------------------------------------------ trace validation

namespace {

// Recursive-descent JSON syntax checker (values are not materialized).
// Returns the position one past the parsed value, or npos on error.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Parse(std::string* error) {
    size_t pos = SkipWs(0);
    pos = Value(pos);
    if (pos == kNpos) {
      *error = error_;
      return false;
    }
    pos = SkipWs(pos);
    if (pos != text_.size()) {
      *error = "trailing bytes after the top-level value";
      return false;
    }
    return true;
  }

 private:
  static constexpr size_t kNpos = static_cast<size_t>(-1);
  static constexpr int kMaxDepth = 64;

  size_t Fail(const char* why) {
    if (error_.empty()) {
      error_ = why;
    }
    return kNpos;
  }

  size_t SkipWs(size_t pos) {
    while (pos < text_.size() &&
           (text_[pos] == ' ' || text_[pos] == '\t' || text_[pos] == '\n' ||
            text_[pos] == '\r')) {
      pos++;
    }
    return pos;
  }

  size_t Value(size_t pos, int depth = 0) {
    if (depth > kMaxDepth) {
      return Fail("nesting too deep");
    }
    if (pos >= text_.size()) {
      return Fail("truncated value");
    }
    char c = text_[pos];
    if (c == '{') {
      return Object(pos, depth);
    }
    if (c == '[') {
      return Array(pos, depth);
    }
    if (c == '"') {
      return String(pos);
    }
    if (c == 't') {
      return Literal(pos, "true");
    }
    if (c == 'f') {
      return Literal(pos, "false");
    }
    if (c == 'n') {
      return Literal(pos, "null");
    }
    return Number(pos);
  }

  size_t Literal(size_t pos, const char* word) {
    size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos, len, word) != 0) {
      return Fail("bad literal");
    }
    return pos + len;
  }

  size_t String(size_t pos) {
    pos++;  // opening quote
    while (pos < text_.size()) {
      char c = text_[pos];
      if (c == '"') {
        return pos + 1;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("control character in string");
      }
      if (c == '\\') {
        if (pos + 1 >= text_.size()) {
          return Fail("truncated escape");
        }
        char esc = text_[pos + 1];
        if (esc == 'u') {
          if (pos + 5 >= text_.size()) {
            return Fail("truncated \\u escape");
          }
          for (size_t i = pos + 2; i < pos + 6; i++) {
            if (!std::isxdigit(static_cast<unsigned char>(text_[i]))) {
              return Fail("bad \\u escape");
            }
          }
          pos += 6;
          continue;
        }
        if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
            esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          return Fail("bad escape");
        }
        pos += 2;
        continue;
      }
      pos++;
    }
    return Fail("unterminated string");
  }

  size_t Number(size_t pos) {
    size_t start = pos;
    if (pos < text_.size() && text_[pos] == '-') {
      pos++;
    }
    size_t digits = 0;
    while (pos < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos]))) {
      pos++;
      digits++;
    }
    if (digits == 0) {
      return Fail("bad number");
    }
    if (pos < text_.size() && text_[pos] == '.') {
      pos++;
      size_t frac = 0;
      while (pos < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos]))) {
        pos++;
        frac++;
      }
      if (frac == 0) {
        return Fail("bad fraction");
      }
    }
    if (pos < text_.size() && (text_[pos] == 'e' || text_[pos] == 'E')) {
      pos++;
      if (pos < text_.size() && (text_[pos] == '+' || text_[pos] == '-')) {
        pos++;
      }
      size_t exp = 0;
      while (pos < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos]))) {
        pos++;
        exp++;
      }
      if (exp == 0) {
        return Fail("bad exponent");
      }
    }
    return pos > start ? pos : Fail("bad number");
  }

  size_t Object(size_t pos, int depth) {
    pos = SkipWs(pos + 1);
    if (pos < text_.size() && text_[pos] == '}') {
      return pos + 1;
    }
    for (;;) {
      pos = SkipWs(pos);
      if (pos >= text_.size() || text_[pos] != '"') {
        return Fail("object key must be a string");
      }
      pos = String(pos);
      if (pos == kNpos) {
        return kNpos;
      }
      pos = SkipWs(pos);
      if (pos >= text_.size() || text_[pos] != ':') {
        return Fail("missing ':' in object");
      }
      pos = Value(SkipWs(pos + 1), depth + 1);
      if (pos == kNpos) {
        return kNpos;
      }
      pos = SkipWs(pos);
      if (pos < text_.size() && text_[pos] == ',') {
        pos++;
        continue;
      }
      if (pos < text_.size() && text_[pos] == '}') {
        return pos + 1;
      }
      return Fail("missing ',' or '}' in object");
    }
  }

  size_t Array(size_t pos, int depth) {
    pos = SkipWs(pos + 1);
    if (pos < text_.size() && text_[pos] == ']') {
      return pos + 1;
    }
    for (;;) {
      pos = Value(SkipWs(pos), depth + 1);
      if (pos == kNpos) {
        return kNpos;
      }
      pos = SkipWs(pos);
      if (pos < text_.size() && text_[pos] == ',') {
        pos++;
        continue;
      }
      if (pos < text_.size() && text_[pos] == ']') {
        return pos + 1;
      }
      return Fail("missing ',' or ']' in array");
    }
  }

  const std::string& text_;
  std::string error_;
};

// Every trace event object must carry these members for chrome://tracing
// and Perfetto to render it as a complete span.
const char* const kRequiredEventKeys[] = {"\"name\"", "\"ph\"",  "\"ts\"",
                                          "\"dur\"",  "\"pid\"", "\"tid\""};

}  // namespace

bool ValidateTraceJson(const std::string& json, std::string* error) {
  std::string local_error;
  if (error == nullptr) {
    error = &local_error;
  }
  JsonChecker checker(json);
  if (!checker.Parse(error)) {
    return false;
  }
  size_t array = json.find("\"traceEvents\"");
  if (array == std::string::npos) {
    *error = "missing traceEvents member";
    return false;
  }
  // Structural spot check: walk the event objects (the emitter writes one
  // "{...}" per event inside the array) and require the span keys. The
  // syntax was already fully validated above, so simple brace scanning is
  // safe here — strings in events never contain braces (names and arg
  // keys are C identifiers).
  size_t pos = json.find('[', array);
  if (pos == std::string::npos) {
    *error = "traceEvents is not an array";
    return false;
  }
  size_t end = json.rfind(']');
  size_t count = 0;
  while (pos < end) {
    size_t open = json.find('{', pos);
    if (open == std::string::npos || open > end) {
      break;
    }
    // Find this event's matching close brace (events nest one level: the
    // args object).
    int depth = 0;
    size_t close = open;
    while (close < json.size()) {
      if (json[close] == '{') {
        depth++;
      } else if (json[close] == '}') {
        depth--;
        if (depth == 0) {
          break;
        }
      }
      close++;
    }
    if (depth != 0) {
      *error = "unbalanced event object";
      return false;
    }
    std::string event = json.substr(open, close - open + 1);
    for (const char* key : kRequiredEventKeys) {
      if (event.find(key) == std::string::npos) {
        *error = std::string("event missing ") + key;
        return false;
      }
    }
    count++;
    pos = close + 1;
  }
  (void)count;
  return true;
}

}  // namespace obs
}  // namespace atom
