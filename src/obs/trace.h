// Fleet observability, part 2: round-phase tracing. A process-global span
// collector that records steady-clock intervals — intake, verify,
// hop(layer,gid), exit sort/check/finalize, transport-lane drains, driver
// round phases — and writes them as Chrome trace-event JSON (the format
// chrome://tracing and Perfetto load directly), so overlapping pipelined
// rounds can be SEEN instead of inferred from aggregate counters.
//
// Cost contract: when tracing is disabled (the default), constructing a
// TraceSpan is one relaxed atomic load and a branch — no clock read, no
// allocation, no lock. When enabled, each span costs two steady_clock
// reads and one short mutex-guarded vector append at destruction; spans
// are pure observation (they never touch an Rng or reorder work), so a
// seeded round's RoundResult is byte-identical with tracing on or off —
// pinned by tests/obs_test.cpp.
//
// Aggregate-only, like the metrics plane: span args carry round ids,
// layers, gids, and counts — never a client identity.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace atom {
namespace obs {

// One completed span ("ph":"X" in the trace-event format). name/cat/arg
// keys are string literals at every call site, so the collector stores
// the pointers.
struct TraceEvent {
  const char* name = "";
  const char* cat = "";
  int64_t ts_us = 0;   // start, microseconds since the collector epoch
  int64_t dur_us = 0;
  uint32_t tid = 0;    // small per-thread ordinal (first-use assignment)
  uint64_t round_id = 0;
  const char* k0 = nullptr;  // up to two extra numeric args
  uint64_t v0 = 0;
  const char* k1 = nullptr;
  uint64_t v1 = 0;
};

// The process-global collector. Enable() arms it (and pins the time
// epoch on first arm); Disable() stops collection but keeps the events;
// Clear() drops them.
class Trace {
 public:
  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void Enable();
  static void Disable();
  static void Clear();
  static size_t EventCount();

  // Microseconds since the collector epoch (valid after first Enable()).
  static int64_t NowUs();

  // Appends one completed span. Callers normally go through TraceSpan;
  // direct Emit exists for spans whose start was recorded elsewhere
  // (e.g. a driver round that completes on a reader thread).
  static void Emit(const TraceEvent& event);

  // The collected events as one Chrome trace-event JSON document:
  // {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,...},...]}.
  static std::string ToJson();
  // Writes ToJson() to a file; false on I/O failure.
  static bool WriteTo(const std::string& path);

 private:
  static std::atomic<bool> enabled_;
};

// RAII span: samples the clock at construction and emits a completed
// event at destruction — if tracing was enabled when it was constructed.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* cat, uint64_t round_id = 0)
      : name_(name), cat_(cat), round_id_(round_id) {
    if (Trace::Enabled()) {
      start_us_ = Trace::NowUs();
    }
  }
  TraceSpan(const char* name, const char* cat, uint64_t round_id,
            const char* k0, uint64_t v0, const char* k1 = nullptr,
            uint64_t v1 = 0)
      : TraceSpan(name, cat, round_id) {
    k0_ = k0;
    v0_ = v0;
    k1_ = k1;
    v1_ = v1;
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (start_us_ >= 0) {
      TraceEvent event;
      event.name = name_;
      event.cat = cat_;
      event.ts_us = start_us_;
      event.dur_us = Trace::NowUs() - start_us_;
      event.round_id = round_id_;
      event.k0 = k0_;
      event.v0 = v0_;
      event.k1 = k1_;
      event.v1 = v1_;
      Trace::Emit(event);
    }
  }

 private:
  const char* name_;
  const char* cat_;
  uint64_t round_id_;
  const char* k0_ = nullptr;
  uint64_t v0_ = 0;
  const char* k1_ = nullptr;
  uint64_t v1_ = 0;
  int64_t start_us_ = -1;  // -1: tracing was off at construction
};

// Minimal well-formedness checker for the files Trace writes (no external
// JSON dependency): full syntactic JSON parse, plus the structural check
// that the document is an object whose "traceEvents" member is an array
// of objects each carrying name/ph/ts/dur/pid/tid. Used by tests and by
// the --trace-out self-validation in the example binaries.
bool ValidateTraceJson(const std::string& json, std::string* error);

}  // namespace obs
}  // namespace atom

#endif  // SRC_OBS_TRACE_H_
