#include "src/sim/costmodel.h"

#include <chrono>
#include <functional>

#include "src/crypto/kem.h"
#include "src/crypto/shuffle.h"
#include "src/crypto/sigma.h"

namespace atom {
namespace {

using Clock = std::chrono::steady_clock;

double TimeIt(const std::function<void()>& fn) {
  auto t0 = Clock::now();
  fn();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

CostModel CostModel::Measure(Rng& rng, size_t batch) {
  CostModel cm;
  auto group = ElGamalKeyGen(rng);
  auto next = ElGamalKeyGen(rng);
  Point m = *EmbedMessage(BytesView(ToBytes("calibration message")));

  // Enc + EncProof.
  std::vector<ElGamalCiphertext> cts(batch);
  std::vector<Scalar> rands(batch);
  cm.enc = TimeIt([&] {
             for (size_t i = 0; i < batch; i++) {
               cts[i] = ElGamalEncrypt(group.pk, m, rng, &rands[i]);
             }
           }) /
           static_cast<double>(batch);
  std::vector<EncProof> eproofs(batch);
  cm.enc_prove = TimeIt([&] {
                   for (size_t i = 0; i < batch; i++) {
                     eproofs[i] =
                         MakeEncProof(group.pk, 0, cts[i], rands[i], rng);
                   }
                 }) /
                 static_cast<double>(batch);
  cm.enc_verify = TimeIt([&] {
                    for (size_t i = 0; i < batch; i++) {
                      VerifyEncProof(group.pk, 0, cts[i], eproofs[i]);
                    }
                  }) /
                  static_cast<double>(batch);

  // ReEnc + ReEncProof.
  std::vector<ElGamalCiphertext> outs(batch);
  std::vector<Scalar> rewraps(batch);
  cm.reenc = TimeIt([&] {
               for (size_t i = 0; i < batch; i++) {
                 outs[i] = ElGamalReEnc(group.sk, &next.pk, cts[i], rng,
                                        &rewraps[i]);
               }
             }) /
             static_cast<double>(batch);
  std::vector<ReEncProof> rproofs(batch);
  cm.reenc_prove = TimeIt([&] {
                     for (size_t i = 0; i < batch; i++) {
                       rproofs[i] = MakeReEncProof(group.sk, group.pk,
                                                   &next.pk, cts[i], outs[i],
                                                   rewraps[i], rng);
                     }
                   }) /
                   static_cast<double>(batch);
  cm.reenc_verify = TimeIt([&] {
                      for (size_t i = 0; i < batch; i++) {
                        VerifyReEncProof(group.pk, &next.pk, cts[i], outs[i],
                                         rproofs[i]);
                      }
                    }) /
                    static_cast<double>(batch);

  // Shuffle and shuffle proof (per message, measured on a batch).
  CiphertextBatch shuffle_batch(batch);
  for (size_t i = 0; i < batch; i++) {
    shuffle_batch[i].push_back(cts[i]);
  }
  cm.shuffle_per_msg = TimeIt([&] {
                         ShuffleBatch(group.pk, shuffle_batch, rng);
                       }) /
                       static_cast<double>(batch);
  ShuffleResult proof_result;
  double prove_total = TimeIt(
      [&] { proof_result = ShuffleAndProve(group.pk, shuffle_batch, rng); });
  cm.shuf_prove_per_msg =
      (prove_total - cm.shuffle_per_msg * static_cast<double>(batch)) /
      static_cast<double>(batch);
  cm.shuf_verify_per_msg =
      TimeIt([&] {
        VerifyShuffle(group.pk, shuffle_batch, proof_result.output,
                      proof_result.proof);
      }) /
      static_cast<double>(batch);

  // KEM decryption (exit phase of the trap variant).
  auto kem = KemKeyGen(rng);
  Bytes msg(160, 0xab);
  Bytes kct = KemEncrypt(kem.pk, BytesView(msg), rng);
  cm.kem_decrypt = TimeIt([&] {
                     for (size_t i = 0; i < batch; i++) {
                       KemDecrypt(kem.sk, BytesView(kct));
                     }
                   }) /
                   static_cast<double>(batch);
  return cm;
}

CostModel CostModel::PaperTable3() {
  CostModel cm;
  cm.enc = 1.40e-4;
  cm.reenc = 3.35e-4;
  cm.shuffle_per_msg = 1.07e-1 / 1024;
  cm.enc_prove = 1.62e-4;
  cm.enc_verify = 1.39e-4;
  cm.reenc_prove = 6.55e-4;
  cm.reenc_verify = 4.46e-4;
  cm.shuf_prove_per_msg = 7.57e-1 / 1024;
  cm.shuf_verify_per_msg = 1.41 / 1024;
  cm.kem_decrypt = 1.40e-4;  // not reported; Enc-sized hybrid operation
  return cm;
}

}  // namespace atom
