// Calibrated cost model for the discrete-event evaluation harness.
//
// The paper's own large-scale figure (Fig. 11) was produced by "modeling the
// expected latency given an input using values shown in Table 3" — i.e., by
// replacing crypto with measured per-primitive costs. We use the same
// methodology: Measure() times the *real* implementations in this repository
// on the local machine, and the simulator (src/sim/netsim.h) combines those
// costs with a network model. PaperTable3() provides the paper's published
// numbers for comparison runs.
#ifndef SRC_SIM_COSTMODEL_H_
#define SRC_SIM_COSTMODEL_H_

#include <cstddef>

#include "src/util/rng.h"

namespace atom {

struct CostModel {
  // Seconds per operation, single-threaded, one 32-byte component.
  double enc = 0;                 // ElGamal Enc
  double reenc = 0;               // out-of-order ReEnc
  double shuffle_per_msg = 0;     // rerandomize+permute, per component
  double enc_prove = 0, enc_verify = 0;
  double reenc_prove = 0, reenc_verify = 0;
  double shuf_prove_per_msg = 0, shuf_verify_per_msg = 0;
  double kem_decrypt = 0;         // inner-ciphertext decryption at exit

  // Structural parallelism constants (fractions of work that can use
  // multiple cores; from the op-count structure of the implementations).
  // Trap-variant mixing is embarrassingly parallel; the shuffle-proof
  // commitment chain (2 of ~8 exps per element) is inherently serial, which
  // is what makes the NIZK variant's core-scaling sub-linear (paper Fig. 7).
  // Trap mixing serializes only the randomness draws (~0.5% of the point
  // arithmetic); the shuffle-proof chain serializes ~5% in practice.
  double trap_parallel_fraction = 0.995;
  double nizk_parallel_fraction = 0.95;

  // Times the real implementations (batch of `batch` messages).
  static CostModel Measure(Rng& rng, size_t batch = 64);

  // The paper's Table 3 (c4.xlarge, Go prototype), for comparison.
  static CostModel PaperTable3();
};

}  // namespace atom

#endif  // SRC_SIM_COSTMODEL_H_
