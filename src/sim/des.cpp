#include "src/sim/des.h"

#include <algorithm>

namespace atom {

void EventQueue::Schedule(double time, Callback cb) {
  ATOM_CHECK(time >= now_);
  queue_.push(Event{time, next_seq_++, std::move(cb)});
}

void EventQueue::Run() {
  while (!queue_.empty()) {
    // priority_queue::top() is const; move out via const_cast-free copy of
    // the callback after popping the ordering fields.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.cb();
  }
}

SimHost::SimHost(EventQueue* queue, size_t cores) : queue_(queue) {
  ATOM_CHECK(cores >= 1);
  core_free_.assign(cores, 0.0);
}

void SimHost::Submit(double duration, std::function<void(double)> done) {
  // Earliest-available core; work cannot start before the current time.
  auto it = std::min_element(core_free_.begin(), core_free_.end());
  double start = std::max(*it, queue_->now());
  double finish = start + duration;
  *it = finish;
  busy_ += duration;
  queue_->Schedule(finish, [finish, done = std::move(done)] { done(finish); });
}

}  // namespace atom
