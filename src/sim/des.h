// A small discrete-event simulation engine: an event queue plus
// core-constrained hosts. Used to simulate server utilization across
// overlapping group chains (the §4.7 staggering experiment) and to
// cross-validate the analytic layer model in src/sim/netsim.h.
#ifndef SRC_SIM_DES_H_
#define SRC_SIM_DES_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/util/check.h"

namespace atom {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules `cb` at absolute simulation time `time` (>= now()).
  void Schedule(double time, Callback cb);

  // Processes events in time order until none remain.
  void Run();

  double now() const { return now_; }

 private:
  struct Event {
    double time;
    uint64_t seq;  // FIFO tie-break for simultaneous events
    Callback cb;
    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  double now_ = 0;
  uint64_t next_seq_ = 0;
};

// A host with a fixed number of cores. Jobs are single-core work slices;
// each occupies the earliest-available core for its duration (FIFO in
// submission order). Tracks busy core-seconds for utilization accounting.
class SimHost {
 public:
  SimHost(EventQueue* queue, size_t cores);

  // Submits `duration` seconds of single-core work starting no earlier than
  // now(); `done` fires (as an event) at the finish time.
  void Submit(double duration, std::function<void(double)> done);

  double busy_core_seconds() const { return busy_; }
  size_t cores() const { return core_free_.size(); }

 private:
  EventQueue* queue_;
  std::vector<double> core_free_;  // earliest next-free time per core
  double busy_ = 0;
};

}  // namespace atom

#endif  // SRC_SIM_DES_H_
