#include "src/sim/groupsim.h"

#include <algorithm>

#include "src/util/check.h"

namespace atom {
namespace {

// Amdahl-adjusted wall time for `work` core-seconds with a parallel
// fraction. One mixing step runs on a single server.
double WallTime(double work, double parallel_fraction, size_t cores) {
  double par = work * parallel_fraction / static_cast<double>(cores);
  double seq = work * (1.0 - parallel_fraction);
  return par + seq;
}

}  // namespace

GroupHopEstimate EstimateGroupHop(const GroupSimConfig& config,
                                  const CostModel& costs) {
  ATOM_CHECK(config.threshold >= 1 && config.threshold <= config.group_size);
  const double n = static_cast<double>(config.messages);
  const double l = static_cast<double>(config.components);
  const double elements = n * l;
  const bool nizk = config.variant == Variant::kNizk;
  const double parallel_fraction =
      nizk ? costs.nizk_parallel_fraction : costs.trap_parallel_fraction;

  GroupHopEstimate est;

  // Per-step compute (one server's turn in the chain).
  double shuffle_work = elements * costs.shuffle_per_msg;
  double reenc_work = elements * costs.reenc;
  if (nizk) {
    // The shuffling server also produces the proof; the (honest) verifiers
    // run concurrently with each other but extend the critical path by one
    // verification before the next server may proceed (Algorithm 2).
    shuffle_work += elements * costs.shuf_prove_per_msg +
                    elements * costs.shuf_verify_per_msg;
    reenc_work += elements * (costs.reenc_prove + costs.reenc_verify);
  }
  double step_compute =
      WallTime(shuffle_work, parallel_fraction, config.cores_per_server) +
      WallTime(reenc_work, parallel_fraction, config.cores_per_server);
  est.compute_seconds = step_compute * static_cast<double>(config.threshold);

  // Network: the batch crosses threshold-1 intra-group links in each of the
  // two phases (shuffle chain, reenc chain); NIZK proof broadcasts ride the
  // same links. One transfer = serialization + one-way latency.
  double bytes_per_transfer = elements * kCiphertextBytes;
  if (nizk) {
    bytes_per_transfer += elements * kNizkProofBytesPerComponent;
  }
  double transfer =
      bytes_per_transfer / config.bandwidth_bps + config.hop_latency_seconds;
  est.network_seconds =
      2.0 * static_cast<double>(config.threshold - 1) * transfer;

  est.total_seconds = est.compute_seconds + est.network_seconds;
  return est;
}

}  // namespace atom
