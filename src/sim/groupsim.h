// Timeline model of ONE anytrust group's mixing iteration (paper §6.1,
// Figs. 5-7): the serial chain of threshold servers shuffling and
// reencrypting a batch, including proof generation/verification in the NIZK
// variant, WAN hops between chain positions, and per-server core counts.
//
// The model is an op-count decomposition over the calibrated CostModel, so
// its absolute numbers track this machine's real crypto; tests cross-check
// it against actual GroupRuntime::RunHop executions.
#ifndef SRC_SIM_GROUPSIM_H_
#define SRC_SIM_GROUPSIM_H_

#include "src/core/params.h"
#include "src/sim/costmodel.h"

namespace atom {

struct GroupSimConfig {
  size_t group_size = 32;   // k
  size_t threshold = 32;    // participating servers (k - (h-1))
  size_t messages = 1024;   // batch size N (the trap variant's doubling is
                            // the caller's responsibility)
  size_t components = 1;    // points per message L
  Variant variant = Variant::kTrap;
  size_t cores_per_server = 4;
  double hop_latency_seconds = 0.1;    // one-way server-to-server WAN
  double bandwidth_bps = 100e6;
};

struct GroupHopEstimate {
  double total_seconds = 0;
  double compute_seconds = 0;  // critical-path crypto time
  double network_seconds = 0;  // latency + transfer time in the chain
};

GroupHopEstimate EstimateGroupHop(const GroupSimConfig& config,
                                  const CostModel& costs);

// Wire size of one ciphertext component (three encoded points).
inline constexpr double kCiphertextBytes = 99.0;
// Approximate per-component proof bytes in the NIZK variant (shuffle proof
// amortized: ~5 points + 3 scalars per element, plus ReEnc proofs).
inline constexpr double kNizkProofBytesPerComponent = 550.0;

}  // namespace atom

#endif  // SRC_SIM_GROUPSIM_H_
