#include "src/sim/netmodel.h"

#include "src/util/check.h"

namespace atom {

NetworkModel::NetworkModel(std::vector<HostSpec> hosts, size_t num_clusters)
    : hosts_(std::move(hosts)), num_clusters_(num_clusters) {
  ATOM_CHECK(!hosts_.empty() && num_clusters_ >= 1);
}

NetworkModel NetworkModel::TorLike(size_t n, Rng& rng, size_t num_clusters) {
  std::vector<HostSpec> hosts;
  hosts.reserve(n);
  for (size_t i = 0; i < n; i++) {
    HostSpec spec;
    uint64_t roll = rng.NextBelow(100);
    if (roll < 80) {
      spec.cores = 4;
      spec.bandwidth_bps = 50e6 + static_cast<double>(rng.NextBelow(50)) * 1e6;
    } else if (roll < 90) {
      spec.cores = 8;
      spec.bandwidth_bps = 100e6 + static_cast<double>(rng.NextBelow(100)) * 1e6;
    } else if (roll < 95) {
      spec.cores = 16;
      spec.bandwidth_bps = 200e6 + static_cast<double>(rng.NextBelow(100)) * 1e6;
    } else {
      spec.cores = 32;
      spec.bandwidth_bps = 300e6 + static_cast<double>(rng.NextBelow(200)) * 1e6;
    }
    spec.cluster = static_cast<uint32_t>(rng.NextBelow(num_clusters));
    hosts.push_back(spec);
  }
  return NetworkModel(std::move(hosts), num_clusters);
}

NetworkModel NetworkModel::Uniform(size_t n, uint32_t cores,
                                   double bandwidth_bps) {
  std::vector<HostSpec> hosts(n, HostSpec{cores, bandwidth_bps, 0});
  return NetworkModel(std::move(hosts), 1);
}

double NetworkModel::LatencySeconds(uint32_t a, uint32_t b) const {
  ATOM_CHECK(a < hosts_.size() && b < hosts_.size());
  uint32_t ca = hosts_[a].cluster, cb = hosts_[b].cluster;
  if (ca == cb) {
    return 0.040;
  }
  // Deterministic 80-160 ms spread over cluster pairs.
  uint32_t lo = std::min(ca, cb), hi = std::max(ca, cb);
  uint32_t mix = (lo * 2654435761u + hi * 40503u) >> 16;
  return 0.080 + static_cast<double>(mix % 81) * 0.001;
}

double NetworkModel::TotalCores() const {
  double total = 0;
  for (const HostSpec& h : hosts_) {
    total += h.cores;
  }
  return total;
}

}  // namespace atom
