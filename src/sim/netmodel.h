// Network and host model for the evaluation harness (§6 experimental setup).
//
// The paper ran on 1,024 heterogeneous EC2 machines — 80% 4-core, 10%
// 8-core, 5% 16-core, 5% 32-core — with a Tor-metrics-derived bandwidth
// distribution (80% <100 Mbps, 10% 100-200, 5% 200-300, 5% >300) and
// tc-injected pairwise latencies of 40 ms within a cluster and 80-160 ms
// across clusters (Fig. 8). TorLike() reproduces that distribution.
#ifndef SRC_SIM_NETMODEL_H_
#define SRC_SIM_NETMODEL_H_

#include <cstdint>
#include <vector>

#include "src/util/rng.h"

namespace atom {

struct HostSpec {
  uint32_t cores = 4;
  double bandwidth_bps = 100e6;
  uint32_t cluster = 0;
};

class NetworkModel {
 public:
  NetworkModel(std::vector<HostSpec> hosts, size_t num_clusters);

  // The paper's heterogeneous testbed distribution over n hosts.
  static NetworkModel TorLike(size_t n, Rng& rng, size_t num_clusters = 4);

  // A homogeneous network (for ablations).
  static NetworkModel Uniform(size_t n, uint32_t cores, double bandwidth_bps);

  size_t size() const { return hosts_.size(); }
  const HostSpec& host(uint32_t i) const { return hosts_[i]; }
  const std::vector<HostSpec>& hosts() const { return hosts_; }

  // One-way latency between two hosts: 40 ms intra-cluster, 80-160 ms
  // inter-cluster (deterministic in the cluster pair).
  double LatencySeconds(uint32_t a, uint32_t b) const;

  // Worst-case one-way latency in the network.
  double MaxLatencySeconds() const { return 0.160; }

  // Aggregate compute capacity in core-units.
  double TotalCores() const;

 private:
  std::vector<HostSpec> hosts_;
  size_t num_clusters_;
};

}  // namespace atom

#endif  // SRC_SIM_NETMODEL_H_
