#include "src/sim/netsim.h"

#include <algorithm>

#include "src/sim/groupsim.h"
#include "src/topology/groups.h"
#include "src/util/check.h"

namespace atom {
namespace {

double WallTime(double work, double parallel_fraction, size_t cores) {
  return work * parallel_fraction / static_cast<double>(cores) +
         work * (1.0 - parallel_fraction);
}

}  // namespace

RoundEstimate EstimateRound(const NetSimConfig& config,
                            const NetworkModel& net, const CostModel& costs) {
  const AtomParams& p = config.params;
  ATOM_CHECK(p.num_groups >= 1 && p.group_size >= 1);
  const bool nizk = p.variant == Variant::kNizk;
  const double parallel_fraction =
      nizk ? costs.nizk_parallel_fraction : costs.trap_parallel_fraction;

  // Messages inside the mixnet: traps double the load in the trap variant.
  const double logical =
      static_cast<double>(config.total_messages + config.dummy_messages);
  const double in_network = logical * (nizk ? 1.0 : 2.0);
  const double per_group = in_network / static_cast<double>(p.num_groups);
  const double elements = per_group * static_cast<double>(config.components);

  // Assign groups to hosts exactly as the protocol would.
  Bytes beacon = ToBytes("netsim-beacon");
  GroupLayout layout = FormGroups(net.size(), p.num_groups, p.group_size,
                                  BytesView(beacon));

  RoundEstimate est;

  // ---- Entry phase: every entry-group server verifies its users' proofs
  // (all k servers verify in parallel, each checks all of its group's
  // submissions), plus one client upload of WAN latency.
  {
    double verify_work =
        elements * costs.enc_verify;  // per server, per component set
    double slowest = 0;
    for (const auto& members : layout.groups) {
      for (uint32_t host_id : members) {
        slowest = std::max(
            slowest, WallTime(verify_work, 0.97, net.host(host_id).cores));
      }
    }
    est.entry_seconds = slowest + net.MaxLatencySeconds();
  }

  // ---- Mixing: T layers.
  const double total_cores = net.TotalCores();
  double mixing = 0;
  double per_layer_chain_max = 0;
  for (size_t layer = 0; layer < p.iterations; layer++) {
    // Per-group serial chain on real member hosts.
    double chain_max = 0;
    double total_work = 0;
    for (const auto& members : layout.groups) {
      double chain = 0;
      size_t steps = std::min<size_t>(p.Threshold(), members.size());
      for (size_t s = 0; s < steps; s++) {
        const HostSpec& host = net.host(members[s]);
        double shuffle_work = elements * costs.shuffle_per_msg;
        double reenc_work = elements * costs.reenc;
        if (nizk) {
          shuffle_work += elements * (costs.shuf_prove_per_msg +
                                      costs.shuf_verify_per_msg);
          reenc_work += elements * (costs.reenc_prove + costs.reenc_verify);
        }
        double step_work = shuffle_work + reenc_work;
        chain += WallTime(step_work, parallel_fraction, host.cores);
        total_work += step_work;

        // Intra-group hand-off to the next chain position.
        if (s + 1 < steps) {
          uint32_t next_host = members[s + 1];
          double bytes = elements * kCiphertextBytes;
          if (nizk) {
            bytes += elements * kNizkProofBytesPerComponent;
          }
          chain += bytes / net.host(members[s]).bandwidth_bps +
                   net.LatencySeconds(members[s], next_host);
        }
      }
      chain_max = std::max(chain_max, chain);
    }

    // Wall clock for the layer: slowest chain vs. the contention floor
    // (every server serves in ~k·G/N groups; staggering keeps them busy, so
    // aggregate throughput is the binding constraint at high load).
    double throughput_floor = total_work / total_cores;
    double layer_wall = std::max(chain_max, throughput_floor);
    per_layer_chain_max = std::max(per_layer_chain_max, layer_wall);

    // Inter-layer barrier: each group's last server opens β connections and
    // ships 1/β of its batch over each; the next layer starts when the
    // slowest input arrives. The β·G flows of the boundary each cost
    // per_connection_seconds of management (the G² term of §6.2).
    double beta = static_cast<double>(p.num_groups);  // square network
    double out_bytes = elements * kCiphertextBytes;
    double min_bw = 1e18;
    for (const auto& members : layout.groups) {
      min_bw = std::min(min_bw, net.host(members.back()).bandwidth_bps);
    }
    double barrier = net.MaxLatencySeconds() + out_bytes / min_bw +
                     beta * static_cast<double>(p.num_groups) *
                         config.per_connection_seconds;
    mixing += layer_wall + barrier;
    est.max_chain_seconds = std::max(est.max_chain_seconds, chain_max);
    est.layer_work_core_seconds =
        std::max(est.layer_work_core_seconds, total_work);
    est.barrier_seconds = std::max(est.barrier_seconds, barrier);
  }
  est.mixing_seconds = mixing;
  est.avg_layer_seconds = mixing / static_cast<double>(p.iterations);

  // ---- Exit phase.
  if (nizk) {
    est.exit_seconds = net.MaxLatencySeconds();  // publish plaintexts
  } else {
    // Sort traps/inners (hashing, negligible), report to trustees, release
    // key, decrypt inner ciphertexts. The trustee group terminates G·k
    // report connections, spread across its k members.
    double report_conns = static_cast<double>(p.num_groups) *
                          static_cast<double>(p.group_size) /
                          static_cast<double>(p.group_size);
    double trustee_time = report_conns * config.trustee_conn_seconds;
    double inner_per_group =
        static_cast<double>(config.total_messages + config.dummy_messages) /
        static_cast<double>(p.num_groups);
    double decrypt = WallTime(inner_per_group * costs.kem_decrypt, 0.97, 4);
    est.exit_seconds = trustee_time + decrypt + 2 * net.MaxLatencySeconds();
  }

  est.total_seconds = est.entry_seconds + est.mixing_seconds +
                      est.exit_seconds;

  // Peak per-server bandwidth: one batch in + one batch out per chain slot.
  double batch_bytes = elements * kCiphertextBytes;
  est.per_server_bytes_per_second =
      per_layer_chain_max > 0 ? 2.0 * batch_bytes / per_layer_chain_max : 0;
  return est;
}

PipelineEstimate EstimatePipelined(const NetSimConfig& config,
                                   const NetworkModel& net,
                                   const CostModel& costs) {
  RoundEstimate round = EstimateRound(config, net, costs);
  const double layers = static_cast<double>(config.params.iterations);

  PipelineEstimate est;
  // With servers partitioned across layers, each layer owns 1/T of the
  // aggregate cores, so the contention floor rises by T; the critical chain
  // and barrier are per-layer properties and do not change.
  double throughput_floor =
      layers * round.layer_work_core_seconds / net.TotalCores();
  est.beat_seconds = std::max(round.max_chain_seconds, throughput_floor) +
                     round.barrier_seconds;
  est.latency_seconds = round.entry_seconds + layers * est.beat_seconds +
                        round.exit_seconds;
  double logical = static_cast<double>(config.total_messages +
                                       config.dummy_messages);
  est.throughput_msgs_per_second =
      est.beat_seconds > 0 ? logical / est.beat_seconds : 0;
  return est;
}

}  // namespace atom
