// Full-network round estimator (§6.2): the substitute for the paper's
// 1,024-machine EC2 deployment, and the engine behind Figs. 9-11 and
// Table 12's Atom rows.
//
// The estimator replays the Round control flow against the calibrated cost
// model and the heterogeneous network model: per layer, every group's
// serial server chain is timed on the actual member hosts (drawn from the
// same FormGroups used by the real protocol), the layer wall-clock is the
// maximum of the slowest group chain and the network-wide throughput bound
// (total core-seconds / total cores — the contention floor from servers
// serving ~k groups each), plus the inter-layer barrier (latency, transfer,
// and per-connection management overhead — the G² connection term that
// bends Fig. 11 sub-linear).
#ifndef SRC_SIM_NETSIM_H_
#define SRC_SIM_NETSIM_H_

#include "src/core/params.h"
#include "src/sim/costmodel.h"
#include "src/sim/netmodel.h"

namespace atom {

struct NetSimConfig {
  AtomParams params;
  size_t total_messages = 0;  // application messages M
  size_t components = 1;      // points per message L
  size_t dummy_messages = 0;  // differential-privacy dummies (dialing)

  // Connection-management overhead per inter-layer FLOW (TLS record/session
  // bookkeeping, socket churn). The square network creates β·G = G² flows
  // per layer boundary, so this term is negligible at G ≈ 2^10 (~1 s/layer)
  // but costs ~20 min/layer at G = 2^15 — reproducing the sub-linearity the
  // paper observed ("the number of connections became unmanageable", §6.2).
  double per_connection_seconds = 1.2e-6;
  double trustee_conn_seconds = 1.5e-3;
};

struct RoundEstimate {
  double total_seconds = 0;
  double entry_seconds = 0;
  double mixing_seconds = 0;
  double exit_seconds = 0;
  double avg_layer_seconds = 0;
  // Per-layer profile (worst layer), for the pipelining estimator.
  double max_chain_seconds = 0;        // slowest group chain
  double layer_work_core_seconds = 0;  // total crypto work in one layer
  double barrier_seconds = 0;          // inter-layer transfer + connections
  // Peak per-server bandwidth demand (bytes/sec) during mixing, for the §7
  // deployment-cost discussion.
  double per_server_bytes_per_second = 0;
};

RoundEstimate EstimateRound(const NetSimConfig& config,
                            const NetworkModel& net, const CostModel& costs);

// §4.7 pipelining: disjoint server sets per layer, a new batch admitted
// every "beat". Latency for one batch is unchanged (plus pipeline fill);
// throughput becomes one full batch per beat instead of per round. Each
// layer only has 1/T of the servers, so the throughput floor rises by T.
struct PipelineEstimate {
  double beat_seconds = 0;        // time between consecutive batch outputs
  double latency_seconds = 0;     // end-to-end for one batch
  double throughput_msgs_per_second = 0;
};

PipelineEstimate EstimatePipelined(const NetSimConfig& config,
                                   const NetworkModel& net,
                                   const CostModel& costs);

}  // namespace atom

#endif  // SRC_SIM_NETSIM_H_
