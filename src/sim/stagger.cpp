#include "src/sim/stagger.h"

#include <memory>

#include "src/sim/des.h"
#include "src/util/check.h"

namespace atom {

LayerSimResult SimulateLayer(const LayerSimConfig& config,
                             const NetworkModel& net) {
  ATOM_CHECK(!config.groups.empty());
  EventQueue queue;
  std::vector<std::unique_ptr<SimHost>> hosts;
  hosts.reserve(net.size());
  for (size_t h = 0; h < net.size(); h++) {
    hosts.push_back(std::make_unique<SimHost>(&queue, net.host(
        static_cast<uint32_t>(h)).cores));
  }

  double makespan = 0;

  // Recursive chain scheduler: step j of group g runs when step j-1's
  // output has crossed the link.
  std::function<void(size_t, size_t, double)> schedule_step =
      [&](size_t g, size_t j, double ready) {
        const auto& members = config.groups[g];
        queue.Schedule(ready, [&, g, j] {
          hosts[members[j]]->Submit(
              config.step_seconds, [&, g, j](double finish) {
                const auto& chain = config.groups[g];
                if (j + 1 < chain.size()) {
                  double latency = net.LatencySeconds(
                      chain[j], chain[j + 1]);
                  schedule_step(g, j + 1, finish + latency);
                } else {
                  makespan = std::max(makespan, finish);
                }
              });
        });
      };

  for (size_t g = 0; g < config.groups.size(); g++) {
    schedule_step(g, 0, 0.0);
  }
  queue.Run();

  double busy = 0, capacity = 0;
  for (const auto& host : hosts) {
    busy += host->busy_core_seconds();
    capacity += static_cast<double>(host->cores()) * makespan;
  }
  LayerSimResult result;
  result.makespan_seconds = makespan;
  result.utilization = capacity > 0 ? busy / capacity : 0;
  return result;
}

std::vector<std::vector<uint32_t>> AlignedLayout(size_t num_servers,
                                                 size_t group_size) {
  ATOM_CHECK(group_size <= num_servers);
  ATOM_CHECK(num_servers % group_size == 0);
  // The §4.7 pathology: partition servers into position classes so that
  // every server occupies the SAME chain position in every group it joins
  // (server k·q + j always sits at position j). Only N/k distinct servers
  // can ever be "first", so every chain queues behind them while the rest
  // of the network idles.
  const size_t classes = num_servers / group_size;
  std::vector<std::vector<uint32_t>> groups(num_servers);
  for (size_t g = 0; g < num_servers; g++) {
    for (size_t j = 0; j < group_size; j++) {
      size_t q = (g + j * 7 + 1) % classes;  // spread membership across classes
      groups[g].push_back(static_cast<uint32_t>(group_size * q + j));
    }
  }
  return groups;
}

std::vector<std::vector<uint32_t>> StaggeredLayout(size_t num_servers,
                                                   size_t group_size) {
  // Same membership as AlignedLayout, with each group's order rotated
  // (§4.7) so a server's chain positions differ across its groups. A
  // server's groups all share g mod classes, so rotating by g/classes walks
  // each server through every chain position exactly once — one unit of
  // work per wave, the paper's "every server active as much as possible".
  auto groups = AlignedLayout(num_servers, group_size);
  const size_t classes = num_servers / group_size;
  for (size_t g = 0; g < groups.size(); g++) {
    std::rotate(groups[g].begin(),
                groups[g].begin() +
                    static_cast<ptrdiff_t>((g / classes) % group_size),
                groups[g].end());
  }
  return groups;
}

}  // namespace atom
