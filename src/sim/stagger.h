// §4.7 server-utilization simulation: many group chains sharing the same
// physical servers, executed on the discrete-event engine.
//
// Every group is a serial chain of k steps; step j of group g runs on the
// host at position j of that group's member list, and a host with c cores
// runs at most c steps at once. When a server occupies the SAME chain
// position in all its groups, all of its work lands in the same time slice
// and the network idles around it; staggering the positions (the paper's
// fix) spreads the load and raises utilization.
#ifndef SRC_SIM_STAGGER_H_
#define SRC_SIM_STAGGER_H_

#include <vector>

#include "src/sim/costmodel.h"
#include "src/sim/netmodel.h"

namespace atom {

struct LayerSimConfig {
  // groups[g] = ordered host ids forming group g's chain.
  std::vector<std::vector<uint32_t>> groups;
  double step_seconds = 1.0;     // single-core work per chain step
  double hop_latency_seconds = 0.1;  // link latency between chain positions
};

struct LayerSimResult {
  double makespan_seconds = 0;   // all groups finished one iteration
  double utilization = 0;        // busy core-seconds / (makespan * cores)
};

// Simulates one mixing iteration of every group on the shared hosts.
LayerSimResult SimulateLayer(const LayerSimConfig& config,
                             const NetworkModel& net);

// Builds an adversarially aligned layout (every server at the same chain
// position in each of its groups) and its staggered counterpart, for the
// §4.7 comparison. `groups_per_server` controls how many chains share a
// host.
std::vector<std::vector<uint32_t>> AlignedLayout(size_t num_servers,
                                                 size_t group_size);
std::vector<std::vector<uint32_t>> StaggeredLayout(size_t num_servers,
                                                   size_t group_size);

}  // namespace atom

#endif  // SRC_SIM_STAGGER_H_
