#include "src/testing/scenario.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <csignal>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "src/apps/dialing.h"
#include "src/core/directory.h"
#include "src/core/round.h"
#include "src/net/client_session.h"
#include "src/net/faults.h"
#include "src/net/gateway.h"
#include "src/net/mesh.h"
#include "src/net/reactor.h"
#include "src/net/registry.h"
#include "src/net/round_driver.h"
#include "src/obs/metrics.h"
#include "src/util/hex.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace atom {
namespace {

// Server-side registries accumulated across scenarios (guarded by its
// mutex; CaptureTransportStats merges into it, FleetMetricsExposition
// reads it out).
std::mutex g_fleet_metrics_mu;
obs::MetricsSnapshot g_fleet_metrics;

// ------------------------------------------------------------ fleet spawn

// One atom_server child process (fork/exec), identity key delivered via a
// private 0600 keyfile, fault plan via --fault-spec. Mirrors the spawn
// harness in examples/distributed_nodes.cpp but adds kill/respawn — the
// scenario layer's process-fault injection point.
struct FleetServer {
  pid_t pid = -1;
  int stdin_w = -1;  // closing this tells the child to exit
  uint16_t port = 0;
  std::string keyfile;
  KemKeypair key;
};

bool WriteKeyfile(const std::string& path, const Scalar& sk) {
  unlink(path.c_str());
  int fd = open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0600);
  if (fd < 0) {
    return false;
  }
  auto sk_bytes = sk.ToBytes();
  std::string line =
      HexEncode(BytesView(sk_bytes.data(), sk_bytes.size())) + "\n";
  bool ok = write(fd, line.data(), line.size()) ==
            static_cast<ssize_t>(line.size());
  close(fd);
  return ok;
}

class Fleet {
 public:
  Fleet(std::string binary, Point driver_pk)
      : binary_(std::move(binary)), driver_pk_(driver_pk) {}

  ~Fleet() {
    for (size_t slot = 0; slot < servers_.size(); slot++) {
      Stop(slot);
    }
    for (FleetServer& server : servers_) {
      if (!server.keyfile.empty()) {
        unlink(server.keyfile.c_str());
      }
    }
  }

  // Spawns server `id` with `key` into `slot`, growing the fleet as
  // needed. `fault_spec` is forwarded verbatim (empty = honest server).
  bool Spawn(size_t slot, uint32_t id, const KemKeypair& key,
             const std::string& fault_spec) {
    if (slot >= servers_.size()) {
      servers_.resize(slot + 1);
    }
    FleetServer& server = servers_[slot];
    server.key = key;
    server.keyfile = "/tmp/atom_scenario_key_" +
                     std::to_string(static_cast<long>(getpid())) + "_" +
                     std::to_string(slot) + "_" + std::to_string(spawns_++);
    if (!WriteKeyfile(server.keyfile, key.sk)) {
      return false;
    }
    int in_pipe[2], out_pipe[2];
    if (pipe(in_pipe) != 0 || pipe(out_pipe) != 0) {
      return false;
    }
    std::string id_str = std::to_string(id);
    std::string pk_hex = HexEncode(BytesView(driver_pk_.Encode()));
    pid_t child = fork();
    if (child < 0) {
      return false;
    }
    if (child == 0) {
      dup2(in_pipe[0], STDIN_FILENO);
      dup2(out_pipe[1], STDOUT_FILENO);
      close(in_pipe[0]);
      close(in_pipe[1]);
      close(out_pipe[0]);
      close(out_pipe[1]);
      std::vector<const char*> argv = {
          "atom_server", "--id",        id_str.c_str(),
          "--keyfile",   server.keyfile.c_str(),
          "--driver-pk", pk_hex.c_str()};
      if (!fault_spec.empty()) {
        argv.push_back("--fault-spec");
        argv.push_back(fault_spec.c_str());
      }
      argv.push_back(nullptr);
      execv(binary_.c_str(),
            const_cast<char* const*>(
                reinterpret_cast<const char* const*>(argv.data())));
      _exit(127);
    }
    close(in_pipe[0]);
    close(out_pipe[1]);
    FILE* child_out = fdopen(out_pipe[0], "r");
    char line[128];
    unsigned got_port = 0;
    if (child_out == nullptr ||
        std::fgets(line, sizeof(line), child_out) == nullptr ||
        std::sscanf(line, "ATOM_SERVER_PORT=%u", &got_port) != 1) {
      if (child_out != nullptr) {
        std::fclose(child_out);
      } else {
        close(out_pipe[0]);
      }
      kill(child, SIGKILL);
      waitpid(child, nullptr, 0);
      close(in_pipe[1]);
      return false;
    }
    std::fclose(child_out);
    server.pid = child;
    server.stdin_w = in_pipe[1];
    server.port = static_cast<uint16_t>(got_port);
    return true;
  }

  // SIGKILL: the process fault. The slot can be re-Spawned afterwards.
  void Kill(size_t slot) {
    FleetServer& server = servers_[slot];
    if (server.pid >= 0) {
      kill(server.pid, SIGKILL);
      waitpid(server.pid, nullptr, 0);
      server.pid = -1;
    }
    if (server.stdin_w >= 0) {
      close(server.stdin_w);
      server.stdin_w = -1;
    }
  }

  // Graceful stop (stdin EOF, then the hammer after ~1s).
  void Stop(size_t slot) {
    FleetServer& server = servers_[slot];
    if (server.stdin_w >= 0) {
      close(server.stdin_w);
      server.stdin_w = -1;
    }
    if (server.pid < 0) {
      return;
    }
    for (int i = 0; i < 100; i++) {
      if (waitpid(server.pid, nullptr, WNOHANG) != 0) {
        server.pid = -1;
        return;
      }
      usleep(10'000);
    }
    kill(server.pid, SIGKILL);
    waitpid(server.pid, nullptr, 0);
    server.pid = -1;
  }

  const FleetServer& server(size_t slot) const { return servers_[slot]; }

 private:
  const std::string binary_;
  const Point driver_pk_;
  std::vector<FleetServer> servers_;
  int spawns_ = 0;  // unique keyfile names across respawns
};

// ------------------------------------------------------- report plumbing

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Server ids mentioned as "server <N>" in an abort reason — the abort's
// blame attribution, checked against the scenario's faulted set.
std::vector<uint32_t> MentionedServers(const std::string& reason) {
  std::vector<uint32_t> ids;
  const std::string needle = "server ";
  for (size_t at = reason.find(needle); at != std::string::npos;
       at = reason.find(needle, at + 1)) {
    size_t digits = at + needle.size();
    if (digits < reason.size() &&
        std::isdigit(static_cast<unsigned char>(reason[digits]))) {
      ids.push_back(
          static_cast<uint32_t>(std::strtoul(reason.c_str() + digits,
                                             nullptr, 10)));
    }
  }
  return ids;
}

// ------------------------------------------------------- scenario runner

// The five deployments share one harness: twin Rounds from one seed, a
// registered client population on real ClientSessions, a gateway, and an
// atom_server fleet (one process per topology group) under the
// DistributedRoundDriver. A scenario is the parameterization below.
struct Shape {
  std::vector<std::string> fault_specs;        // per group slot
  std::shared_ptr<FaultPlan> gateway_plan;     // churn
  std::set<uint64_t> faulted_rounds;           // round ids that must abort
  bool byte_twin = true;      // compare clean rounds against the ref twin
  bool allow_client_drop = false;  // churn: SubmitAndWait may fail
  bool flash = false;              // concurrent burst population
  bool kill_phase = false;         // partition: SIGKILL + repair epilogue
  uint32_t stalled_server = 0;     // straggler (informational)
};

constexpr uint32_t kKillSlot = 1;  // partition epilogue kills group 1's host

class ScenarioRunner {
 public:
  explicit ScenarioRunner(const ScenarioConfig& config)
      : cfg_(config) {
    report_.scenario = config.name;
    report_.seed = config.seed;
    report_.workload = config.workload;
  }

  ScenarioReport Run() {
    signal(SIGPIPE, SIG_IGN);
    if (!BuildShape() || !SetUp()) {
      return report_;
    }
    if (shape_.flash) {
      DriveFlashCrowd();
    } else {
      DriveSerial();
    }
    CaptureTransportStats();  // before TearDown stops the mesh
    TearDown();
    if (report_.failure.empty()) {
      report_.ok = true;
    }
    return report_;
  }

 private:
  void Fail(const std::string& what) {
    if (report_.failure.empty()) {
      report_.failure = "scenario " + cfg_.name +
                        " seed=" + std::to_string(cfg_.seed) + ": " + what;
    }
  }

  void Note(const char* fmt, ...) {
    if (!cfg_.verbose) {
      return;
    }
    va_list ap;
    va_start(ap, fmt);
    std::vprintf(fmt, ap);
    va_end(ap);
    std::printf("\n");
    std::fflush(stdout);
  }

  bool BuildShape() {
    const uint64_t seed = cfg_.seed;
    // Scenarios that fault one specific round fault round 2 (needs two
    // rounds minimum so a clean round precedes and, with three, follows).
    fault_round_ = cfg_.rounds >= 2 ? 2 : 1;
    const std::string spec_seed = "seed=" + std::to_string(seed);
    if (cfg_.name == "churn") {
      shape_.gateway_plan = std::make_shared<FaultPlan>();
      shape_.gateway_plan->set_seed(seed);
      shape_.gateway_plan->set_client_disconnect_rate(0.45);
      shape_.allow_client_drop = true;
    } else if (cfg_.name == "flash_crowd") {
      shape_.flash = true;
      shape_.byte_twin = false;
    } else if (cfg_.name == "partition") {
      // Region A = groups {0,1} (hosts 1,2), region B = {2,3} (hosts
      // 3,4): every cross-region link severed for exactly fault_round_,
      // both directions (the same spec rides every server).
      std::string spec = spec_seed;
      const std::string at = "@" + std::to_string(fault_round_) + "-" +
                             std::to_string(fault_round_);
      for (uint32_t a : {1u, 2u}) {
        for (uint32_t b : {3u, 4u}) {
          spec += ";sever=" + std::to_string(a) + "-" + std::to_string(b) +
                  at;
        }
      }
      shape_.fault_specs = {spec, spec, spec, spec};
      shape_.faulted_rounds.insert(fault_round_);
      shape_.kill_phase = true;
    } else if (cfg_.name == "straggler") {
      shape_.fault_specs = {"", spec_seed + ";stall=10", "", ""};
      shape_.stalled_server = 2;
    } else if (cfg_.name == "byzantine") {
      shape_.fault_specs = {
          "", spec_seed + ";tamper=" + std::to_string(fault_round_) + "-" +
                  std::to_string(fault_round_),
          "", ""};
      shape_.faulted_rounds.insert(fault_round_);
    } else {
      Fail("unknown scenario (see ScenarioNames())");
      return false;
    }
    return true;
  }

  bool SetUp() {
    RoundConfig rc;
    rc.params.variant = Variant::kTrap;
    rc.params.num_servers = 6;
    rc.params.num_groups = 4;
    rc.params.group_size = 3;
    rc.params.honest_needed = 1;
    rc.params.iterations = 3;
    rc.params.message_len =
        cfg_.workload == WorkloadKind::kDialing ? kDialMessageLen : 64;
    rc.beacon = ToBytes("scenario-" + cfg_.name);
    rc.workers = 2;
    if (shape_.flash) {
      // A tiny shard ring: with 60 clients bursting into 4 slots per
      // shard, the crowd must hit kBackpressure (bounded queueing), yet
      // a backoff-retrying client still lands within the round.
      rc.stream_queue_capacity = 4;
    }

    // Twin key epochs from one seed: `net_` is fed over the real client
    // path, `ref_` (fault-free twin) the identical accepted submissions
    // in process.
    Rng rng_net(cfg_.seed);
    net_ = std::make_unique<Round>(rc, rng_net);
    if (shape_.byte_twin) {
      Rng rng_ref(cfg_.seed);
      ref_ = std::make_unique<Round>(rc, rng_ref);
    }
    width_ = static_cast<uint32_t>(net_->NumGroups());
    shape_.fault_specs.resize(width_);

    // The client population: a flash crowd is 10x the base population,
    // every client registered with the Directory and synced into the
    // gateway's registry.
    const uint32_t population = shape_.flash ? cfg_.users * 10 : cfg_.users;
    Directory directory(ToBytes("scenario-genesis"));
    key_rng_ = std::make_unique<Rng>(cfg_.seed + 11);
    for (uint32_t u = 0; u < population; u++) {
      uint64_t id = 1000 + u;
      SchnorrKeypair kp = SchnorrKeyGen(*key_rng_);
      if (!directory.RegisterClient(
              MakeClientRegistration(id, kp, *key_rng_))) {
        Fail("client registration failed");
        return false;
      }
      client_ids_.push_back(id);
      client_keys_[id] = KemKeypair{kp.sk, kp.pk};
    }
    registry_.SeedFromDirectory(directory);
    workload_ = std::make_unique<ScenarioWorkload>(
        cfg_.workload, rc.params.message_len, cfg_.seed, client_ids_);

    // The fleet: one atom_server process per topology group, fault specs
    // riding --fault-spec.
    driver_key_ = KemKeyGen(*key_rng_);
    fleet_ = std::make_unique<Fleet>(cfg_.server_binary, driver_key_.pk);
    std::vector<MeshPeer> roster;
    for (uint32_t g = 0; g < width_; g++) {
      hosts_.push_back(g + 1);
      KemKeypair key = KemKeyGen(*key_rng_);
      if (!fleet_->Spawn(g, hosts_[g], key, shape_.fault_specs[g])) {
        Fail("could not spawn atom_server for group " + std::to_string(g));
        return false;
      }
      roster.push_back(MeshPeer{hosts_[g], "127.0.0.1",
                                fleet_->server(g).port, key.pk});
    }
    roster_ = roster;
    mesh_ = std::make_unique<TcpPeerMesh>(TcpPeerMesh::Role::kDriver,
                                          kMeshDriverId, driver_key_);
    mesh_->SetRoster(roster_);
    mesh_->set_dial_attempts(3);
    // Deterministic round ids 1,2,3…: the fleet's fault specs name
    // rounds by id, and a replay must hit the same rounds.
    mesh_->set_next_round_id(1);
    if (!mesh_->ConnectAndPushRoster()) {
      Fail("roster push to the fleet failed");
      return false;
    }
    for (uint32_t g = 0; g < width_; g++) {
      if (!mesh_->SendHostGroup(hosts_[g], g, net_->group(g).dkg())) {
        Fail("host-group push to server " + std::to_string(hosts_[g]) +
             " failed");
        return false;
      }
    }
    Note("fleet up: %u atom_server processes (hosts 1..%u)", width_, width_);

    // Ingress: the gateway fronts net_'s streaming intake; churn's
    // forced disconnects are its fault plan.
    gateway_key_ = KemKeyGen(*key_rng_);
    GatewayConfig gc;
    gc.verify_workers = 2;
    if (shape_.flash) {
      gc.credit_window = 4;
    }
    gateway_ = MakeClientGateway(cfg_.gateway_backend, net_.get(),
                                 &registry_, gateway_key_, gc);
    if (shape_.gateway_plan != nullptr) {
      gateway_->SetFaultPlan(shape_.gateway_plan);
    }
    if (!gateway_->Listen(0)) {
      Fail("gateway listen failed");
      return false;
    }
    gateway_->Start();
    sessions_.resize(client_ids_.size());
    for (size_t u = 0; u < client_ids_.size(); u++) {
      if (!Reconnect(u)) {
        Fail("client " + std::to_string(client_ids_[u]) +
             " failed to authenticate");
        return false;
      }
    }
    Note("gateway up on port %u; %zu authenticated sessions",
         gateway_->port(), sessions_.size());

    driver_ = std::make_unique<DistributedRoundDriver>(mesh_.get(), hosts_);
    driver_->set_round_timeout(cfg_.round_timeout);
    if (shape_.byte_twin) {
      engine_ = std::make_unique<RoundEngine>(&ThreadPool::Shared());
    }
    sub_rng_ = std::make_unique<Rng>(cfg_.seed + 23);
    take_net_ = std::make_unique<Rng>(cfg_.seed + 31);
    take_ref_ = std::make_unique<Rng>(cfg_.seed + 31);
    return true;
  }

  bool Reconnect(size_t u) {
    sessions_[u] = ClientSession::Connect(
        "127.0.0.1", gateway_->port(), client_ids_[u],
        client_keys_[client_ids_[u]], gateway_key_.pk);
    return sessions_[u] != nullptr;
  }

  // Ships one intake epoch: drains net_, records its blame epoch, hands
  // it to the fleet, and mirrors the accepted submissions into the
  // fault-free twin.
  void ShipRound(std::vector<TrapSubmission> accepted_subs,
                 std::vector<Bytes> accepted_msgs) {
    EngineRound spec = net_->TakeEngineRound({}, *take_net_);
    epochs_.push_back(spec.intake_epoch);
    net_tickets_.push_back(driver_->Submit(std::move(spec)));
    if (shape_.byte_twin) {
      for (const TrapSubmission& sub : accepted_subs) {
        if (!ref_->SubmitTrap(sub)) {
          Fail("fault-free twin rejected an accepted submission");
        }
      }
      ref_tickets_.push_back(
          engine_->Submit(ref_->TakeEngineRound({}, *take_ref_)));
    }
    accepted_.push_back(std::move(accepted_msgs));
  }

  // Serial intake (churn / partition / straggler / byzantine): one
  // SubmitAndWait per client per round, so the accepted set — and under
  // churn, exactly which clients the gateway dropped — is knowable and
  // ordered, keeping even churned rounds byte-comparable to the twin.
  void DriveSerial() {
    const size_t total = cfg_.rounds + (shape_.kill_phase ? 2 : 0);
    const uint64_t kill_round = cfg_.rounds + 1;
    for (size_t r = 0; r < total && report_.failure.empty(); r++) {
      const uint64_t round_id = r + 1;
      if (shape_.kill_phase && round_id == kill_round) {
        // Process fault: SIGKILL group 1's host. The in-flight scenario
        // rounds are drained first so the kill's blast radius is exactly
        // this round — it must abort round-scoped; the repaired fleet
        // must complete the next.
        WaitPending();
        Note("killing server %u (round %llu ships into a dead peer)",
             hosts_[kKillSlot],
             static_cast<unsigned long long>(round_id));
        fleet_->Kill(kKillSlot);
        shape_.faulted_rounds.insert(round_id);
      }
      if (shape_.kill_phase && round_id == kill_round + 1) {
        if (!RepairFleet()) {
          return;
        }
      }
      gateway_->OpenRound(round_id);
      std::vector<TrapSubmission> subs;
      std::vector<Bytes> msgs;
      for (size_t u = 0; u < client_ids_.size(); u++) {
        const uint64_t id = client_ids_[u];
        const uint32_t gid = static_cast<uint32_t>(u) % width_;
        // Built unconditionally so the sub_rng stream — and with it the
        // replay — is independent of which clients the plan drops.
        Bytes msg = workload_->Message(round_id, id);
        TrapSubmission sub = MakeTrapSubmission(
            net_->EntryPk(gid), gid, net_->TrusteePk(), BytesView(msg),
            net_->layout(), *sub_rng_);
        sub.client_id = id;
        if (((sessions_[u] != nullptr && sessions_[u]->alive()) ||
             Reconnect(u)) &&
            sessions_[u]->SubmitAndWait(sub)) {
          subs.push_back(std::move(sub));
          msgs.push_back(std::move(msg));
        } else if (!shape_.allow_client_drop) {
          Fail("round " + std::to_string(round_id) + ": client " +
               std::to_string(id) + " submission not accepted");
        } else if (sessions_[u] != nullptr && !sessions_[u]->alive()) {
          sessions_[u].reset();  // churned out; reconnects next round
        }
      }
      // Churn liveness floor: a round with zero accepted submissions
      // cannot mix. Client 0 redials until one submission lands (its
      // plan stream is seeded, so the replay takes the same retries).
      for (int attempt = 0; shape_.allow_client_drop && subs.empty() &&
                            attempt < 20 && report_.failure.empty();
           attempt++) {
        Bytes msg = workload_->Message(round_id, client_ids_[0]);
        TrapSubmission sub = MakeTrapSubmission(
            net_->EntryPk(0), 0, net_->TrusteePk(), BytesView(msg),
            net_->layout(), *sub_rng_);
        sub.client_id = client_ids_[0];
        if (Reconnect(0) && sessions_[0]->SubmitAndWait(sub)) {
          subs.push_back(std::move(sub));
          msgs.push_back(std::move(msg));
        }
      }
      if (shape_.allow_client_drop && subs.empty()) {
        Fail("round " + std::to_string(round_id) +
             ": gateway dropped every submission attempt");
      }
      gateway_->Cutoff();
      Note("round %llu: %zu/%zu submissions accepted",
           static_cast<unsigned long long>(round_id), subs.size(),
           client_ids_.size());
      ShipRound(std::move(subs), std::move(msgs));
    }
    CheckOutcomes();
  }

  // Flash crowd: the whole 10x population bursts concurrently into a
  // one-slot shard ring behind a 4-credit window; kBackpressure verdicts
  // bound the queue and every client retries until its message lands.
  void DriveFlashCrowd() {
    for (size_t r = 0; r < cfg_.rounds && report_.failure.empty(); r++) {
      const uint64_t round_id = r + 1;
      gateway_->OpenRound(round_id);
      // Messages and submissions prebuilt serially (workload and
      // sub_rng are not thread-safe); threads only submit.
      std::vector<Bytes> msgs;
      std::vector<TrapSubmission> subs;
      for (size_t u = 0; u < client_ids_.size(); u++) {
        const uint32_t gid = static_cast<uint32_t>(u) % width_;
        msgs.push_back(workload_->Message(round_id, client_ids_[u]));
        subs.push_back(MakeTrapSubmission(
            net_->EntryPk(gid), gid, net_->TrusteePk(),
            BytesView(msgs.back()), net_->layout(), *sub_rng_));
        subs.back().client_id = client_ids_[u];
      }
      std::atomic<size_t> backpressure{0};
      std::vector<uint8_t> landed(client_ids_.size(), 0);
      std::mutex fail_mu;
      std::string fail;
      std::vector<std::thread> threads;
      threads.reserve(client_ids_.size());
      for (size_t u = 0; u < client_ids_.size(); u++) {
        threads.emplace_back([&, u] {
          for (int attempt = 0; attempt < 500; attempt++) {
            uint64_t seq = sessions_[u]->Submit(subs[u]);
            std::optional<SubmitStatus> status;
            if (seq != 0) {
              status = sessions_[u]->WaitResult(seq);
            }
            if (status == SubmitStatus::kAccepted) {
              landed[u] = 1;
              return;
            }
            if (status != SubmitStatus::kBackpressure) {
              std::lock_guard<std::mutex> lock(fail_mu);
              if (fail.empty()) {
                fail = "round " + std::to_string(round_id) + ": client " +
                       std::to_string(client_ids_[u]) +
                       " got a non-backpressure failure";
              }
              return;
            }
            backpressure.fetch_add(1, std::memory_order_relaxed);
            // Jittered backoff (by client index, so retries de-herd)
            // capped well under the round timeout.
            usleep(1'000 + 500 * static_cast<useconds_t>(u % 8) +
                   1'000 * static_cast<useconds_t>(std::min(attempt, 20)));
          }
          std::lock_guard<std::mutex> lock(fail_mu);
          if (fail.empty()) {
            fail = "round " + std::to_string(round_id) + ": client " +
                   std::to_string(client_ids_[u]) +
                   " starved behind backpressure";
          }
        });
      }
      for (std::thread& t : threads) {
        t.join();
      }
      if (!fail.empty()) {
        Fail(fail);
      }
      gateway_->Cutoff();
      report_.backpressure_events +=
          backpressure.load(std::memory_order_relaxed);
      std::vector<Bytes> accepted_msgs;
      for (size_t u = 0; u < client_ids_.size(); u++) {
        if (landed[u]) {
          accepted_msgs.push_back(std::move(msgs[u]));
        }
      }
      Note("round %llu: %zu/%zu landed, %zu backpressure verdicts",
           static_cast<unsigned long long>(round_id), accepted_msgs.size(),
           client_ids_.size(), backpressure.load());
      ShipRound({}, std::move(accepted_msgs));
    }
    CheckOutcomes();
    if (report_.failure.empty() && report_.backpressure_events == 0) {
      Fail("a 10x flash crowd against a one-slot ring never saw "
           "kBackpressure — the credit window is not bounding intake");
    }
  }

  // The partition epilogue's repair: a replacement process takes over the
  // killed slot under a fresh key; the re-pushed roster and re-shipped
  // group material make the next round completable.
  bool RepairFleet() {
    KemKeypair fresh = KemKeyGen(*key_rng_);
    if (!fleet_->Spawn(kKillSlot, hosts_[kKillSlot], fresh, "")) {
      Fail("could not respawn the killed server");
      return false;
    }
    roster_[kKillSlot] = MeshPeer{hosts_[kKillSlot], "127.0.0.1",
                                  fleet_->server(kKillSlot).port, fresh.pk};
    mesh_->SetRoster(roster_);
    if (!mesh_->ConnectAndPushRoster()) {
      Fail("roster repair push failed");
      return false;
    }
    if (!mesh_->SendHostGroup(hosts_[kKillSlot], kKillSlot,
                              net_->group(kKillSlot).dkg())) {
      Fail("host-group re-push to the replacement failed");
      return false;
    }
    Note("fleet repaired: replacement server %u up", hosts_[kKillSlot]);
    return true;
  }

  // Resolves every submitted-but-unwaited fleet round, in order.
  void WaitPending() {
    while (net_results_.size() < net_tickets_.size()) {
      net_results_.push_back(
          driver_->Wait(net_tickets_[net_results_.size()]));
    }
  }

  // The invariant matrix, per round: abort-or-complete (Wait returning
  // at all is the liveness proof — the driver deadline converts a hang
  // into an abort), blame bounded to faulted parties, clean rounds
  // byte-identical to the twin, and the application workload validating
  // end to end on the accepted set.
  void CheckOutcomes() {
    WaitPending();
    for (size_t r = 0; r < net_tickets_.size(); r++) {
      const uint64_t round_id = r + 1;
      const EngineRoundResult& res = net_results_[r];
      EngineRoundResult ref_res;
      if (shape_.byte_twin) {
        ref_res = engine_->Wait(ref_tickets_[r]);
      }
      RoundOutcome outcome;
      outcome.round_id = round_id;
      outcome.completed = !res.aborted;
      outcome.fault_expected = shape_.faulted_rounds.count(round_id) > 0;
      outcome.abort_reason = res.abort_reason;
      outcome.accepted = accepted_[r].size();
      if (res.aborted) {
        Note("round %llu aborted: %s",
             static_cast<unsigned long long>(round_id),
             res.abort_reason.c_str());
        if (!outcome.fault_expected) {
          Fail("fault-free round " + std::to_string(round_id) +
               " aborted: " + res.abort_reason);
        } else {
          CheckBlame(round_id, res.abort_reason, epochs_[r]);
        }
      } else {
        outcome.plaintexts = res.round.plaintexts.size();
        Note("round %llu completed: %zu plaintexts",
             static_cast<unsigned long long>(round_id),
             res.round.plaintexts.size());
        if (outcome.fault_expected) {
          Fail("round " + std::to_string(round_id) +
               " was faulted but completed instead of aborting");
        } else {
          std::string err = workload_->CheckRound(
              round_id, accepted_[r], res.round.plaintexts);
          if (!err.empty()) {
            Fail("round " + std::to_string(round_id) + " workload: " + err);
          }
          if (shape_.byte_twin) {
            if (ref_res.aborted) {
              Fail("fault-free twin aborted round " +
                   std::to_string(round_id) + ": " + ref_res.abort_reason);
            } else if (res.round.plaintexts != ref_res.round.plaintexts ||
                       res.round.traps_seen != ref_res.round.traps_seen ||
                       res.round.inner_seen != ref_res.round.inner_seen) {
              Fail("round " + std::to_string(round_id) +
                   " diverged from the fault-free twin");
            }
          }
        }
      }
      report_.rounds.push_back(std::move(outcome));
    }
    if (shape_.gateway_plan != nullptr) {
      report_.client_disconnects = shape_.gateway_plan->counts().disconnects;
      if (report_.failure.empty() && report_.client_disconnects == 0) {
        Fail("churn plan never disconnected a client");
      }
    }
  }

  // Blame boundedness for an expected abort: the reason must be scoped
  // to exactly this round, must not be a timeout (faults are detected,
  // not waited out), and must accuse only faulted parties.
  void CheckBlame(uint64_t round_id, const std::string& reason,
                  uint64_t epoch) {
    if (reason.find("round " + std::to_string(round_id)) ==
        std::string::npos) {
      Fail("round " + std::to_string(round_id) +
           " abort reason is not round-scoped: " + reason);
      return;
    }
    if (cfg_.name == "partition" && round_id == fault_round_) {
      // The accusation must name a severed cross-region pair — one host
      // from {1,2} and one from {3,4} — never an intra-region link.
      std::vector<uint32_t> ids = MentionedServers(reason);
      bool in_a = false, in_b = false, stray = false;
      for (uint32_t id : ids) {
        in_a |= (id == 1 || id == 2);
        in_b |= (id == 3 || id == 4);
        stray |= (id < 1 || id > 4);
      }
      if (ids.empty() || stray || !in_a || !in_b) {
        Fail("partition abort does not name a cross-region pair: " +
             reason);
      }
    }
    if (cfg_.name == "byzantine") {
      if (reason.find("timed out") != std::string::npos) {
        Fail("byzantine tamper surfaced as a timeout, not a detection: " +
             reason);
        return;
      }
      // §4.6: a cheating mixer must not frame users. Blame over the
      // aborted epoch (the Round retains its intake) must come back
      // empty for every entry group.
      for (uint32_t gid = 0; gid < width_; gid++) {
        BlameResult blame = net_->BlameEntryGroup(gid, epoch);
        if (!blame.bad_users.empty()) {
          Fail("byzantine abort framed " +
               std::to_string(blame.bad_users.size()) +
               " honest user(s) in group " + std::to_string(gid));
          return;
        }
      }
    }
  }

  void CaptureTransportStats() {
    if (mesh_ == nullptr) {
      return;
    }
    const MeshTransportStats stats = mesh_->Stats();
    report_.transport_bytes_sent = stats.TotalBytes();
    report_.transport_frames_sent = stats.TotalFrames();
    report_.transport_bundles_sent = stats.TotalBundles();
    report_.transport_bundle_fill = stats.BundleFill();
    report_.transport_queue_depth_peak = stats.QueueDepthPeak();
    report_.transport_send_queue_drops = stats.send_queue_drops;
    if (cfg_.collect_fleet_metrics) {
      // Fold every still-reachable server's registry into the process
      // accumulator. Dead/severed hosts (kill/partition scenarios) just
      // time out on the control plane and are skipped.
      std::lock_guard<std::mutex> lock(g_fleet_metrics_mu);
      for (uint32_t host : hosts_) {
        auto remote = mesh_->FetchMetricsSnapshot(host);
        if (remote.has_value()) {
          g_fleet_metrics.MergeFrom(*remote);
        }
      }
    }
  }

  void TearDown() {
    sessions_.clear();
    if (gateway_ != nullptr) {
      gateway_->Stop();
    }
    if (mesh_ != nullptr) {
      mesh_->Stop();  // joins readers before the driver dies
    }
    driver_.reset();
    fleet_.reset();
  }

  const ScenarioConfig cfg_;
  ScenarioReport report_;
  Shape shape_;
  uint64_t fault_round_ = 2;

  std::unique_ptr<Round> net_, ref_;
  uint32_t width_ = 0;
  std::unique_ptr<Rng> key_rng_, sub_rng_, take_net_, take_ref_;
  std::vector<uint64_t> client_ids_;
  std::map<uint64_t, KemKeypair> client_keys_;
  ClientRegistry registry_;
  std::unique_ptr<ScenarioWorkload> workload_;

  KemKeypair driver_key_, gateway_key_;
  std::unique_ptr<Fleet> fleet_;
  std::vector<uint32_t> hosts_;
  std::vector<MeshPeer> roster_;
  std::unique_ptr<TcpPeerMesh> mesh_;
  std::unique_ptr<ClientGateway> gateway_;
  std::vector<std::unique_ptr<ClientSession>> sessions_;
  std::unique_ptr<DistributedRoundDriver> driver_;
  std::unique_ptr<RoundEngine> engine_;

  std::vector<uint64_t> net_tickets_, ref_tickets_, epochs_;
  std::vector<EngineRoundResult> net_results_;  // waited prefix
  std::vector<std::vector<Bytes>> accepted_;  // per round, message bytes
};

}  // namespace

const std::vector<std::string>& ScenarioNames() {
  static const std::vector<std::string> names = {
      "churn", "flash_crowd", "partition", "straggler", "byzantine"};
  return names;
}

ScenarioReport RunScenario(const ScenarioConfig& config) {
  ScenarioRunner runner(config);
  return runner.Run();
}

std::string FleetMetricsExposition() {
  obs::MetricsSnapshot merged = obs::Registry::Global().Snapshot();
  {
    std::lock_guard<std::mutex> lock(g_fleet_metrics_mu);
    merged.MergeFrom(g_fleet_metrics);
  }
  return merged.Exposition();
}

std::string ScenarioReport::ToJson() const {
  std::string json = "{";
  json += "\"scenario\":\"" + JsonEscape(scenario) + "\",";
  json += "\"seed\":" + std::to_string(seed) + ",";
  json += "\"workload\":\"" + std::string(WorkloadName(workload)) + "\",";
  json += std::string("\"ok\":") + (ok ? "true" : "false") + ",";
  json += "\"failure\":\"" + JsonEscape(failure) + "\",";
  json += "\"backpressure_events\":" + std::to_string(backpressure_events) +
          ",";
  json += "\"client_disconnects\":" + std::to_string(client_disconnects) +
          ",";
  json += "\"transport\":{";
  json += "\"bytes_sent\":" + std::to_string(transport_bytes_sent) + ",";
  json += "\"frames_sent\":" + std::to_string(transport_frames_sent) + ",";
  json += "\"bundles_sent\":" + std::to_string(transport_bundles_sent) + ",";
  {
    char fill[32];
    std::snprintf(fill, sizeof(fill), "%.2f", transport_bundle_fill);
    json += std::string("\"bundle_fill\":") + fill + ",";
  }
  json += "\"queue_depth_peak\":" +
          std::to_string(transport_queue_depth_peak) + ",";
  json += "\"send_queue_drops\":" +
          std::to_string(transport_send_queue_drops) + "},";
  json += "\"rounds\":[";
  for (size_t i = 0; i < rounds.size(); i++) {
    const RoundOutcome& r = rounds[i];
    if (i > 0) {
      json += ",";
    }
    json += "{\"round_id\":" + std::to_string(r.round_id) + ",";
    json += std::string("\"completed\":") +
            (r.completed ? "true" : "false") + ",";
    json += std::string("\"fault_expected\":") +
            (r.fault_expected ? "true" : "false") + ",";
    json += "\"accepted\":" + std::to_string(r.accepted) + ",";
    json += "\"plaintexts\":" + std::to_string(r.plaintexts) + ",";
    json += "\"abort_reason\":\"" + JsonEscape(r.abort_reason) + "\"}";
  }
  json += "]}";
  return json;
}

}  // namespace atom
