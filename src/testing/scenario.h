// Adversarial scenario harness: named fault deployments over the REAL
// stack — registered clients on authenticated ClientSessions, a
// SubmissionGateway fronting streaming intake, a DistributedRoundDriver,
// and a fleet of atom_server OS processes — with every fault drawn from
// one seeded FaultPlan (src/net/faults.h) so a failing run replays
// exactly from its printed seed.
//
// Each scenario drives several pipelined rounds and asserts the
// invariant matrix:
//
//   * liveness  — every round either completes or aborts with a
//                 round-scoped reason; nothing hangs past the deadline;
//   * blame     — an abort's attribution names only faulted parties
//                 (severed server pairs for partitions, no framed users
//                 for a byzantine mixer: BlameEntryGroup over the aborted
//                 epoch must come back empty);
//   * fidelity  — rounds the faults did not touch stay byte-identical to
//                 a fault-free twin Round fed the identical accepted
//                 submissions in process;
//   * workload  — the application layer (src/apps/workload.h: raw,
//                 dialing, microblogging) validates end to end on
//                 whatever subset of submissions the gateway accepted.
//
// The catalog (ScenarioNames()):
//
//   churn        gateway force-drops clients mid-stream; dropped clients
//                reconnect next round; the accepted set stays exactly
//                knowable, so every round still byte-matches its twin.
//   flash_crowd  ~10x oversubscription (burst submissions from every
//                client against a tiny credit window and shard ring);
//                backpressure verdicts must bound the queue, retries must
//                land every message, and the round must conserve them.
//   partition    a regional link cut (both directions, one round) aborts
//                exactly that round, naming a cross-region server pair;
//                then a SIGKILLed server aborts its round and a
//                repaired roster completes a fresh one.
//   straggler    one server stalls before every frame; rounds slow down
//                but complete byte-identical to the twin.
//   byzantine    one mixer re-points a round's hop batch (valid curve
//                points — protocol-level cheating); the §4.4 trap check
//                aborts that round and no user is blamed for it.
#ifndef SRC_TESTING_SCENARIO_H_
#define SRC_TESTING_SCENARIO_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "src/apps/workload.h"
#include "src/net/gateway.h"

namespace atom {

struct ScenarioConfig {
  std::string name;  // one of ScenarioNames()
  uint64_t seed = 1;
  // Rounds driven through the pipeline (partition adds two more for its
  // kill/repair phase). Scenarios that fault "round 2" need >= 2.
  size_t rounds = 3;
  uint32_t users = 6;
  WorkloadKind workload = WorkloadKind::kRaw;
  std::string server_binary;  // path to the atom_server executable
  std::chrono::milliseconds round_timeout{std::chrono::seconds(60)};
  bool verbose = false;  // per-round progress on stdout
  // Which ingress engine fronts the intake. Thread-per-connection is the
  // default so existing scenario baselines stay bit-for-bit; the reactor
  // serves the identical protocol and must pass the same invariants at
  // 10x the population (reactor_test / scenario_test pin this).
  GatewayBackend gateway_backend = GatewayBackend::kThreadPerConnection;
  // When set, each scenario pulls every reachable server's metrics
  // registry over the control plane (kMetricsSnapshot) before teardown
  // and folds it into the process-wide fleet accumulator readable via
  // FleetMetricsExposition(). Off by default: faulted scenarios pay a
  // control-timeout per dead host.
  bool collect_fleet_metrics = false;
};

struct RoundOutcome {
  uint64_t round_id = 0;
  bool completed = false;
  bool fault_expected = false;  // the scenario injected a fault here
  std::string abort_reason;
  size_t accepted = 0;    // submissions the gateway accepted
  size_t plaintexts = 0;  // anonymized outputs (0 when aborted)
};

struct ScenarioReport {
  std::string scenario;
  uint64_t seed = 0;
  WorkloadKind workload = WorkloadKind::kRaw;
  bool ok = false;
  // First invariant violation (empty when ok). Always mentions enough to
  // replay: chaos_fleet --scenario <name> --seed <seed>.
  std::string failure;
  std::vector<RoundOutcome> rounds;
  size_t backpressure_events = 0;  // flash_crowd: kBackpressure verdicts
  size_t client_disconnects = 0;   // churn: gateway force-drops

  // Driver-mesh transport counters (TcpPeerMesh::Stats snapshot taken
  // before teardown): how much wire traffic the scenario generated and
  // how well entry coalescing packed it.
  uint64_t transport_bytes_sent = 0;
  uint64_t transport_frames_sent = 0;
  uint64_t transport_bundles_sent = 0;
  double transport_bundle_fill = 0.0;  // envelopes per bundle frame
  size_t transport_queue_depth_peak = 0;
  size_t transport_send_queue_drops = 0;

  std::string ToJson() const;
};

// The scenario catalog, in documentation order.
const std::vector<std::string>& ScenarioNames();

// Fleet-wide metrics accumulated across every scenario this process ran
// with collect_fleet_metrics set: the local registry (driver + gateway +
// pools) merged with each server's kMetricsSnapshot reply, rendered in
// Prometheus text exposition format. chaos_fleet --metrics-out dumps it.
std::string FleetMetricsExposition();

// Runs one scenario to completion. Never throws and never hangs past
// (rounds + 2) * round_timeout: every invariant violation — including a
// round that would have hung — lands in the returned report.
ScenarioReport RunScenario(const ScenarioConfig& config);

}  // namespace atom

#endif  // SRC_TESTING_SCENARIO_H_
