#include "src/topology/groups.h"

#include <algorithm>
#include <cmath>

#include "src/crypto/sha256.h"
#include "src/util/check.h"
#include "src/util/rng.h"
#include "src/util/serde.h"

namespace atom {
namespace {

// log2 of the binomial coefficient C(k, i) via lgamma.
double Log2Choose(size_t k, size_t i) {
  return (std::lgamma(static_cast<double>(k) + 1) -
          std::lgamma(static_cast<double>(i) + 1) -
          std::lgamma(static_cast<double>(k - i) + 1)) /
         std::log(2.0);
}

}  // namespace

double Log2ProbGroupBad(size_t k, double f, size_t h) {
  ATOM_CHECK(k >= 1 && h >= 1 && h <= k);
  ATOM_CHECK(f > 0.0 && f < 1.0);
  // Sum the h binomial tail terms in log space with the max factored out.
  double log2f = std::log2(f);
  double log2g = std::log2(1.0 - f);
  double max_term = -1e300;
  std::vector<double> terms;
  terms.reserve(h);
  for (size_t i = 0; i < h; i++) {
    double t = Log2Choose(k, i) + static_cast<double>(i) * log2g +
               static_cast<double>(k - i) * log2f;
    terms.push_back(t);
    max_term = std::max(max_term, t);
  }
  double sum = 0.0;
  for (double t : terms) {
    sum += std::exp2(t - max_term);
  }
  return max_term + std::log2(sum);
}

size_t MinGroupSize(double f, size_t num_groups, size_t h,
                    double log2_target) {
  double log2_groups = std::log2(static_cast<double>(num_groups));
  for (size_t k = h;; k++) {
    if (Log2ProbGroupBad(k, f, h) + log2_groups < log2_target) {
      return k;
    }
    ATOM_CHECK_MSG(k < 100000, "group size diverged");
  }
}

GroupLayout FormGroups(size_t num_servers, size_t num_groups, size_t k,
                       BytesView beacon) {
  ATOM_CHECK(k >= 1 && k <= num_servers);
  GroupLayout layout;
  layout.group_size = k;
  layout.groups.reserve(num_groups);

  for (size_t g = 0; g < num_groups; g++) {
    // Derive a per-group seed from the beacon so group membership is a pure
    // function of public randomness. Hash down to 32 bytes: Rng keys on at
    // most 32 seed bytes, so the group index must be folded in by hashing.
    ByteWriter w;
    w.Var(beacon);
    w.Raw(ToBytes("atom/group-formation"));
    w.U32(static_cast<uint32_t>(g));
    auto seed = Sha256::Hash(BytesView(w.bytes()));
    Rng rng{BytesView(seed.data(), seed.size())};

    // Sample k distinct servers (rejection; k << num_servers in practice,
    // and even k == num_servers terminates).
    std::vector<uint32_t> members;
    members.reserve(k);
    std::vector<bool> used(num_servers, false);
    while (members.size() < k) {
      auto s = static_cast<uint32_t>(rng.NextBelow(num_servers));
      if (!used[s]) {
        used[s] = true;
        members.push_back(s);
      }
    }
    // Stagger: rotate the in-group order by the group index, so a server in
    // many groups sits at different chain positions (§4.7).
    std::rotate(members.begin(),
                members.begin() + static_cast<ptrdiff_t>(g % k),
                members.end());
    layout.groups.push_back(std::move(members));
  }
  return layout;
}

}  // namespace atom
