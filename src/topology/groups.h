// Anytrust / many-trust group formation (§4.1, §4.5, Appendix B).
//
// Groups are sampled from a public unbiased randomness beacon so that no
// adversary can bias membership. The group size k is chosen so that, with an
// adversary controlling a fraction f of all servers, the probability that
// ANY of the G groups contains fewer than h honest servers is below a target
// (2^-64 in the paper).
#ifndef SRC_TOPOLOGY_GROUPS_H_
#define SRC_TOPOLOGY_GROUPS_H_

#include <cstdint>
#include <vector>

#include "src/util/bytes.h"

namespace atom {

// log2 of the probability that one uniformly sampled group of k servers
// contains fewer than h honest servers, when a fraction f of servers is
// malicious:  log2( Σ_{i<h} C(k,i) (1-f)^i f^(k-i) ).
double Log2ProbGroupBad(size_t k, double f, size_t h);

// Smallest k with G * Pr[group bad] < 2^log2_target (Appendix B; Fig. 13 is
// this function graphed over h).
size_t MinGroupSize(double f, size_t num_groups, size_t h,
                    double log2_target = -64.0);

// A full network's group assignment: `groups[g]` lists the k server ids in
// group g, in protocol order after staggering (§4.7).
struct GroupLayout {
  size_t group_size = 0;
  std::vector<std::vector<uint32_t>> groups;
};

// Samples `num_groups` groups of k distinct servers each from `num_servers`
// using the beacon value as the seed (a server may serve in many groups, as
// in the paper's 1,024-server/1,024-group deployment). Positions within each
// group are staggered by group index so that a server appearing in several
// groups occupies different chain positions and stays busy (§4.7).
GroupLayout FormGroups(size_t num_servers, size_t num_groups, size_t k,
                       BytesView beacon);

}  // namespace atom

#endif  // SRC_TOPOLOGY_GROUPS_H_
