#include "src/topology/mixquality.h"

#include <cmath>

namespace atom {

std::vector<size_t> RoutePositions(const Topology& topo, size_t per_vertex,
                                   Rng& rng) {
  const size_t width = topo.Width();
  const size_t m = width * per_vertex;
  std::vector<std::vector<size_t>> at(width);
  for (size_t i = 0; i < m; i++) {
    at[i / per_vertex].push_back(i);
  }
  for (size_t layer = 0; layer < topo.NumLayers(); layer++) {
    std::vector<std::vector<size_t>> next(width);
    for (uint32_t v = 0; v < width; v++) {
      auto& batch = at[v];
      for (size_t i = batch.size(); i > 1; i--) {
        std::swap(batch[i - 1], batch[rng.NextBelow(i)]);
      }
      auto neighbors = topo.Neighbors(layer, v);
      for (size_t i = 0; i < batch.size(); i++) {
        next[neighbors[i % neighbors.size()]].push_back(batch[i]);
      }
    }
    at = std::move(next);
  }
  std::vector<size_t> position(m);
  size_t pos = 0;
  for (uint32_t v = 0; v < width; v++) {
    for (size_t id : at[v]) {
      position[id] = pos++;
    }
  }
  return position;
}

MixQuality MeasureMixQuality(const Topology& topo, size_t per_vertex,
                             size_t trials, Rng& rng) {
  ATOM_CHECK(trials > 0 && per_vertex > 0);
  const size_t width = topo.Width();
  std::vector<size_t> marginal(width, 0);
  std::vector<size_t> joint(width * width, 0);

  for (size_t t = 0; t < trials; t++) {
    auto pos = RoutePositions(topo, per_vertex, rng);
    size_t v0 = pos[0] / per_vertex;
    size_t v1 = pos[1] / per_vertex;
    marginal[v0]++;
    joint[v0 * width + v1]++;
  }

  MixQuality quality;
  const double n = static_cast<double>(trials);
  for (size_t v = 0; v < width; v++) {
    quality.marginal_tv += std::abs(static_cast<double>(marginal[v]) / n -
                                    1.0 / static_cast<double>(width));
  }
  quality.marginal_tv /= 2.0;

  // Ideal joint distribution of two distinct elements' exit vertices, for
  // per_vertex slots per vertex: same vertex with probability
  // (per_vertex-1)/(m-1), a specific other vertex with per_vertex/(m-1).
  const double m = static_cast<double>(width * per_vertex);
  const double pv = static_cast<double>(per_vertex);
  for (size_t a = 0; a < width; a++) {
    for (size_t b = 0; b < width; b++) {
      double ideal = (a == b) ? (pv - 1.0) / (m - 1.0) / 1.0
                              : pv / (m - 1.0);
      ideal /= static_cast<double>(width);  // marginal of element 0
      quality.joint_tv += std::abs(
          static_cast<double>(joint[a * width + b]) / n - ideal);
    }
  }
  quality.joint_tv /= 2.0;
  return quality;
}

}  // namespace atom
