// Empirical mixing quality of a permutation topology (§3).
//
// The paper relies on Håstad's analysis that the square network yields a
// near-uniform permutation after T ∈ O(1) iterations (it runs T = 10), and
// on Czumaj-Vöcking for the butterfly. This module measures the claim
// directly: it repeatedly routes a batch through the topology with fresh
// shuffle randomness and estimates how far the induced permutation is from
// uniform — both for a single tracked element (marginal) and for a pair of
// elements (joint), since correlations that marginals miss are exactly what
// weak mixing leaves behind.
#ifndef SRC_TOPOLOGY_MIXQUALITY_H_
#define SRC_TOPOLOGY_MIXQUALITY_H_

#include "src/topology/permnet.h"
#include "src/util/rng.h"

namespace atom {

// Routes `per_vertex * Width()` abstract messages through the topology once
// (shuffle at each vertex, deal round-robin to the neighbours); returns the
// exit position of each message.
std::vector<size_t> RoutePositions(const Topology& topo, size_t per_vertex,
                                   Rng& rng);

struct MixQuality {
  // Total-variation distance of the tracked element's empirical exit-vertex
  // distribution from uniform.
  double marginal_tv = 0;
  // TV distance of the (element 0, element 1) joint exit-vertex pair
  // distribution from the ideal (uniform on distinct-slot pairs collapses
  // to near-independent vertices for per_vertex >= 2).
  double joint_tv = 0;
};

// Estimates quality over `trials` independent routings.
MixQuality MeasureMixQuality(const Topology& topo, size_t per_vertex,
                             size_t trials, Rng& rng);

}  // namespace atom

#endif  // SRC_TOPOLOGY_MIXQUALITY_H_
