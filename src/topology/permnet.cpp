#include "src/topology/permnet.h"

#include <numeric>

namespace atom {

SquareTopology::SquareTopology(size_t width, size_t iterations)
    : width_(width), iterations_(iterations) {
  ATOM_CHECK(width >= 1 && iterations >= 1);
}

std::vector<uint32_t> SquareTopology::Neighbors(size_t layer,
                                                uint32_t vertex) const {
  ATOM_CHECK(layer < iterations_ && vertex < width_);
  std::vector<uint32_t> out(width_);
  std::iota(out.begin(), out.end(), 0u);
  return out;
}

ButterflyTopology::ButterflyTopology(size_t log2_width, size_t passes)
    : log2_width_(log2_width), passes_(passes) {
  ATOM_CHECK(log2_width >= 1 && passes >= 1);
}

std::vector<uint32_t> ButterflyTopology::Neighbors(size_t layer,
                                                   uint32_t vertex) const {
  ATOM_CHECK(layer < NumLayers() && vertex < Width());
  uint32_t bit = 1u << (layer % log2_width_);
  return {vertex, vertex ^ bit};
}

size_t ButterflyPassesFor(size_t log2_width) {
  return log2_width + 2;
}

}  // namespace atom
