// Random permutation network topologies (§3).
//
// Atom arranges its server groups into a layered graph. Each vertex of layer
// t shuffles its batch, splits it into β equal sub-batches, and forwards one
// sub-batch to each of its β neighbours in layer t+1. After T layers of a
// suitable topology, the induced permutation of all M messages is
// near-uniform. Two topologies from the paper:
//
//  * Square network (Håstad's square-lattice shuffle [40]): G vertices per
//    layer, complete bipartite between layers (β = G), T ∈ O(1) iterations.
//    This is the network the paper evaluates (T = 10) — G² links per layer
//    boundary, which is also the sub-linearity culprit in Fig. 11.
//  * Iterated butterfly [26]: G = 2^w vertices, β = 2 (identity + XOR of one
//    bit per stage), repeated for several passes; T ∈ O(log² G).
#ifndef SRC_TOPOLOGY_PERMNET_H_
#define SRC_TOPOLOGY_PERMNET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/util/check.h"

namespace atom {

// A layered mixing topology. Layer indices run 0..NumLayers()-1; messages
// enter at layer 0 and exit after layer NumLayers()-1 processes them.
class Topology {
 public:
  virtual ~Topology() = default;

  // Number of mixing iterations T.
  virtual size_t NumLayers() const = 0;
  // Vertices (groups) per layer.
  virtual size_t Width() const = 0;
  // Branching factor β (number of neighbours of every vertex).
  virtual size_t Branching() const = 0;
  // Neighbours of `vertex` in the next layer; size() == Branching().
  // Undefined for layer == NumLayers()-1 callers should treat the last
  // layer's output as the exit batch.
  virtual std::vector<uint32_t> Neighbors(size_t layer,
                                          uint32_t vertex) const = 0;
};

// Håstad square network: complete bipartite layers.
class SquareTopology : public Topology {
 public:
  // `width` groups per layer, `iterations` mixing layers (paper uses 10).
  SquareTopology(size_t width, size_t iterations);

  size_t NumLayers() const override { return iterations_; }
  size_t Width() const override { return width_; }
  size_t Branching() const override { return width_; }
  std::vector<uint32_t> Neighbors(size_t layer,
                                  uint32_t vertex) const override;

 private:
  size_t width_;
  size_t iterations_;
};

// Iterated butterfly: width must be a power of two; each pass has log2(width)
// stages; stage s of a pass connects v to {v, v XOR 2^s}.
class ButterflyTopology : public Topology {
 public:
  ButterflyTopology(size_t log2_width, size_t passes);

  size_t NumLayers() const override { return log2_width_ * passes_; }
  size_t Width() const override { return size_t{1} << log2_width_; }
  size_t Branching() const override { return 2; }
  std::vector<uint32_t> Neighbors(size_t layer,
                                  uint32_t vertex) const override;

 private:
  size_t log2_width_;
  size_t passes_;
};

// Number of passes giving a near-uniform permutation for the iterated
// butterfly per Czumaj-Vöcking: O(log M); we use ceil(log2(width)) + 2.
size_t ButterflyPassesFor(size_t log2_width);

}  // namespace atom

#endif  // SRC_TOPOLOGY_PERMNET_H_
