// Common byte-buffer aliases and small helpers shared across the codebase.
#ifndef SRC_UTIL_BYTES_H_
#define SRC_UTIL_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace atom {

// Owned byte buffer. All wire formats in this project are vectors of bytes.
using Bytes = std::vector<uint8_t>;

// Non-owning view over bytes.
using BytesView = std::span<const uint8_t>;

// Concatenates any number of byte buffers / views into a fresh buffer.
inline Bytes Concat(std::initializer_list<BytesView> parts) {
  size_t total = 0;
  for (const auto& p : parts) {
    total += p.size();
  }
  Bytes out;
  out.reserve(total);
  for (const auto& p : parts) {
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

// Makes a Bytes from a string literal / std::string (no NUL terminator).
inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

// Constant-time equality over equal-length buffers; returns false on length
// mismatch. Used for MAC/commitment comparisons.
inline bool ConstantTimeEqual(BytesView a, BytesView b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); i++) {
    diff |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return diff == 0;
}

}  // namespace atom

#endif  // SRC_UTIL_BYTES_H_
