#include "src/util/chacha_core.h"

namespace atom {
namespace {

inline uint32_t Rotl32(uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline uint32_t LoadLe32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

inline void StoreLe32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b;
  d = Rotl32(d ^ a, 16);
  c += d;
  b = Rotl32(b ^ c, 12);
  a += b;
  d = Rotl32(d ^ a, 8);
  c += d;
  b = Rotl32(b ^ c, 7);
}

}  // namespace

void ChaCha20Block(const uint8_t key[32], uint32_t counter,
                   const uint8_t nonce[12], uint8_t out[64]) {
  // "expand 32-byte k"
  uint32_t state[16] = {0x61707865, 0x3320646e, 0x79622d32, 0x6b206574};
  for (int i = 0; i < 8; i++) {
    state[4 + i] = LoadLe32(key + 4 * i);
  }
  state[12] = counter;
  for (int i = 0; i < 3; i++) {
    state[13 + i] = LoadLe32(nonce + 4 * i);
  }

  uint32_t x[16];
  for (int i = 0; i < 16; i++) {
    x[i] = state[i];
  }
  for (int round = 0; round < 10; round++) {
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; i++) {
    StoreLe32(out + 4 * i, x[i] + state[i]);
  }
}

}  // namespace atom
