// ChaCha20 block function (RFC 8439). Lives in util/ so that both the DRBG
// (src/util/rng.h) and the stream cipher / AEAD (src/crypto/chacha20.h) can
// share one implementation without a layering inversion.
#ifndef SRC_UTIL_CHACHA_CORE_H_
#define SRC_UTIL_CHACHA_CORE_H_

#include <array>
#include <cstdint>

namespace atom {

// Computes one 64-byte ChaCha20 block.
//   key:     32 bytes, interpreted as 8 little-endian u32 words.
//   counter: 32-bit block counter.
//   nonce:   12 bytes, interpreted as 3 little-endian u32 words.
// Output: 64 bytes of keystream.
void ChaCha20Block(const uint8_t key[32], uint32_t counter,
                   const uint8_t nonce[12], uint8_t out[64]);

}  // namespace atom

#endif  // SRC_UTIL_CHACHA_CORE_H_
