// Invariant checking. The codebase is exception-free (Google style); fatal
// violations of internal invariants abort with a diagnostic instead of
// throwing. Recoverable failures use atom::Result / std::optional.
#ifndef SRC_UTIL_CHECK_H_
#define SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Aborts the process when `cond` is false. Always enabled (release builds
// included): protocol code must never continue past a broken invariant.
#define ATOM_CHECK(cond)                                                      \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "ATOM_CHECK failed at %s:%d: %s\n", __FILE__,      \
                   __LINE__, #cond);                                          \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

// Like ATOM_CHECK but with a printf-style message appended.
#define ATOM_CHECK_MSG(cond, ...)                                             \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::fprintf(stderr, "ATOM_CHECK failed at %s:%d: %s: ", __FILE__,      \
                   __LINE__, #cond);                                          \
      std::fprintf(stderr, __VA_ARGS__);                                      \
      std::fprintf(stderr, "\n");                                             \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

#endif  // SRC_UTIL_CHECK_H_
