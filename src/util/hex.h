// Hexadecimal encoding and decoding for byte buffers.
#ifndef SRC_UTIL_HEX_H_
#define SRC_UTIL_HEX_H_

#include <optional>
#include <string>

#include "src/util/bytes.h"

namespace atom {

// Lower-case hex encoding of `data`.
std::string HexEncode(BytesView data);

// Decodes a hex string (case-insensitive). Returns std::nullopt if `hex` has
// odd length or contains a non-hex character.
std::optional<Bytes> HexDecode(std::string_view hex);

}  // namespace atom

#endif  // SRC_UTIL_HEX_H_
