// Bounded lock-free multi-producer single-consumer ring (Vyukov's bounded
// queue, specialised to one consumer). The streaming submission intake
// (src/core/round.h) keeps one of these per entry-group shard: gateway
// connection threads TryPush decoded submissions without taking any lock,
// and a single pump task drains them into pool-verified batch acceptance —
// so verification of span k overlaps the socket reads producing span k+1.
//
// TryPush fails (returns false) when the ring is full instead of blocking
// or growing: the bound IS the backpressure signal the caller advertises
// upstream (credit windows on client connections).
#ifndef SRC_UTIL_MPSC_H_
#define SRC_UTIL_MPSC_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>
#include <utility>

#include "src/util/check.h"

namespace atom {

template <typename T>
class MpscRing {
 public:
  // Capacity is rounded up to a power of two (sequence arithmetic needs
  // it); at least 2.
  explicit MpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity) {
      cap <<= 1;
    }
    capacity_ = cap;
    mask_ = cap - 1;
    cells_ = std::make_unique<Cell[]>(cap);
    for (size_t i = 0; i < cap; i++) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
  }

  MpscRing(const MpscRing&) = delete;
  MpscRing& operator=(const MpscRing&) = delete;

  size_t capacity() const { return capacity_; }

  // Multi-producer enqueue; false when the ring is full.
  bool TryPush(T&& item) {
    size_t pos = tail_.load(std::memory_order_relaxed);
    for (;;) {
      Cell& cell = cells_[pos & mask_];
      size_t seq = cell.seq.load(std::memory_order_acquire);
      intptr_t diff =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (diff == 0) {
        if (tail_.compare_exchange_weak(pos, pos + 1,
                                        std::memory_order_relaxed)) {
          cell.value = std::move(item);
          cell.seq.store(pos + 1, std::memory_order_release);
          return true;
        }
        // CAS failure reloaded pos; retry with it.
      } else if (diff < 0) {
        return false;  // the cell still holds an unconsumed older entry
      } else {
        pos = tail_.load(std::memory_order_relaxed);
      }
    }
  }

  // Single-consumer dequeue; nullopt when empty. Must only ever be called
  // by one thread at a time (the per-shard pump discipline).
  std::optional<T> TryPop() {
    size_t pos = head_.load(std::memory_order_relaxed);
    Cell& cell = cells_[pos & mask_];
    size_t seq = cell.seq.load(std::memory_order_acquire);
    if (static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1) < 0) {
      return std::nullopt;  // producer has not published this slot yet
    }
    T out = std::move(cell.value);
    cell.value = T{};
    cell.seq.store(pos + capacity_, std::memory_order_release);
    head_.store(pos + 1, std::memory_order_relaxed);
    return out;
  }

  // Racy size estimate (monitoring only).
  size_t SizeApprox() const {
    size_t tail = tail_.load(std::memory_order_relaxed);
    size_t head = head_.load(std::memory_order_relaxed);
    return tail >= head ? tail - head : 0;
  }

 private:
  struct Cell {
    std::atomic<size_t> seq{0};
    T value{};
  };

  size_t capacity_ = 0;
  size_t mask_ = 0;
  std::unique_ptr<Cell[]> cells_;
  alignas(64) std::atomic<size_t> tail_{0};  // producers
  alignas(64) std::atomic<size_t> head_{0};  // the single consumer
};

}  // namespace atom

#endif  // SRC_UTIL_MPSC_H_
