#include "src/util/parallel.h"

#include <atomic>
#include <exception>
#include <memory>

#include "src/obs/metrics.h"
#include "src/util/check.h"

namespace atom {

namespace {

// Pool telemetry, aggregated process-wide across every ThreadPool (a
// process normally runs one shared pool; benches that host several see
// one combined series, which is what "how busy are my cores" wants).
// Counters/gauges are always on; queue-dwell histograms sample only when
// obs::TimingEnabled().
struct PoolMetrics {
  obs::Gauge* queue_depth;
  obs::Gauge* queue_depth_peak;
  obs::Counter* tasks[3];
  obs::Histogram* dwell[3];

  static PoolMetrics& Get() {
    static PoolMetrics m = [] {
      obs::Registry& reg = obs::Registry::Global();
      PoolMetrics out;
      out.queue_depth = reg.GetGauge("atom_pool_queue_depth");
      out.queue_depth_peak = reg.GetGauge("atom_pool_queue_depth_peak");
      const char* classes[3] = {"default", "engine", "transport"};
      for (size_t c = 0; c < 3; c++) {
        std::string label = std::string("{class=\"") + classes[c] + "\"}";
        out.tasks[c] = reg.GetCounter("atom_pool_tasks_total" + label);
        out.dwell[c] =
            reg.GetHistogram("atom_pool_task_dwell_us" + label);
      }
      return out;
    }();
    return m;
  }
};

// Buckets submissions by the weight bands the callers actually use:
// sender-lane drains run at 1<<40 (src/net/mesh.cpp), engine hop/exit
// tasks at layer strides of 1<<20 (src/core/engine.cpp), everything else
// at the default 0.
uint8_t WeightClass(int64_t weight) {
  if (weight >= (int64_t{1} << 40)) {
    return 2;  // transport
  }
  if (weight >= (int64_t{1} << 20)) {
    return 1;  // engine
  }
  return 0;
}

}  // namespace

// One ParallelFor region. Iterations are claimed with an atomic cursor
// (dynamic scheduling in chunks of one: crypto work per item is uniform but
// this keeps tail latency low when n is not a multiple of the worker
// count). The region is done when every iteration has been claimed AND
// executed; helpers that arrive late see next >= n and return immediately.
struct ThreadPool::ForState {
  ForState(size_t total, const std::function<void(size_t)>& f)
      : n(total), fn(&f) {}

  const size_t n;
  const std::function<void(size_t)>* fn;
  std::atomic<size_t> next{0};
  std::atomic<size_t> completed{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  // first exception, written under mu
};

void ThreadPool::RunSlice(ForState& state) {
  for (;;) {
    size_t i = state.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= state.n) {
      return;
    }
    if (!state.failed.load(std::memory_order_relaxed)) {
      try {
        (*state.fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state.mu);
        if (state.error == nullptr) {
          state.error = std::current_exception();
        }
        state.failed.store(true, std::memory_order_relaxed);
      }
    }
    if (state.completed.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        state.n) {
      // Taking the lock orders the notification after the waiter's
      // predicate check, so the wake-up cannot be lost.
      std::lock_guard<std::mutex> lock(state.mu);
      state.cv.notify_all();
    }
  }
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = 1;
  }
  threads_.reserve(num_threads);
  for (size_t t = 0; t < num_threads; t++) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::WorkerLoop() {
  PoolMetrics& metrics = PoolMetrics::Get();
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        return;  // shutdown with a drained queue
      }
      auto it = tasks_.begin();  // highest weight, FIFO within a weight
      task = std::move(it->second);
      tasks_.erase(it);
      metrics.queue_depth->Set(static_cast<int64_t>(tasks_.size()));
    }
    if (task.enqueued != std::chrono::steady_clock::time_point{}) {
      // Sampled only when timing was enabled at submit; pure observation
      // (the clock read happens outside mu_ and never reorders work).
      auto dwell = std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - task.enqueued);
      metrics.dwell[task.weight_class]->Observe(
          static_cast<uint64_t>(dwell.count()));
    }
    task.fn();
  }
}

void ThreadPool::Submit(std::function<void()> task, int64_t weight) {
  PoolMetrics& metrics = PoolMetrics::Get();
  QueuedTask queued;
  queued.fn = std::move(task);
  queued.weight_class = WeightClass(weight);
  if (obs::TimingEnabled()) {
    queued.enqueued = std::chrono::steady_clock::now();
  }
  metrics.tasks[queued.weight_class]->Add(1);
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Accepted even during shutdown: the destructor drains the queue
    // before joining, so a task Submitted by a still-running task is
    // executed rather than aborting the process.
    tasks_.emplace(weight, std::move(queued));
    const auto depth = static_cast<int64_t>(tasks_.size());
    metrics.queue_depth->Set(depth);
    metrics.queue_depth_peak->UpdateMax(depth);
  }
  cv_.notify_one();
}

void ThreadPool::For(size_t max_workers, size_t n,
                     const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (max_workers <= 1 || n == 1) {
    for (size_t i = 0; i < n; i++) {
      fn(i);
    }
    return;
  }
  auto state = std::make_shared<ForState>(n, fn);
  // The caller is one worker; helpers never exceed the pool size or the
  // iteration count. shared_ptr keeps the state alive for helpers that are
  // dequeued after the region already drained.
  size_t helpers = std::min(max_workers - 1, std::min(n - 1, num_threads()));
  for (size_t h = 0; h < helpers; h++) {
    Submit([state] { RunSlice(*state); });
  }
  RunSlice(*state);
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] {
      return state->completed.load(std::memory_order_acquire) == n;
    });
  }
  if (state->error != nullptr) {
    std::rethrow_exception(state->error);
  }
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool pool(HardwareThreads());
  return pool;
}

void ParallelFor(size_t workers, size_t n,
                 const std::function<void(size_t)>& fn) {
  ThreadPool::Shared().For(workers, n, fn);
}

SerialExecutor::SerialExecutor(ThreadPool* pool)
    : pool_(pool != nullptr ? pool : &ThreadPool::Shared()) {}

SerialExecutor::~SerialExecutor() { Drain(); }

void SerialExecutor::Submit(std::function<void()> task) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.push_back(std::move(task));
  if (!active_) {
    active_ = true;
    pool_->Submit([this] { Pump(); });
  }
}

void SerialExecutor::Pump() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!queue_.empty()) {
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
  // active_ clears only once the queue is empty, so at most one pump task
  // exists and tasks of one executor never run concurrently.
  active_ = false;
  cv_.notify_all();
}

void SerialExecutor::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return queue_.empty() && !active_; });
}

size_t HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace atom
