#include "src/util/parallel.h"

#include <atomic>
#include <thread>
#include <vector>

namespace atom {

void ParallelFor(size_t workers, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) {
    return;
  }
  if (workers <= 1 || n == 1) {
    for (size_t i = 0; i < n; i++) {
      fn(i);
    }
    return;
  }
  if (workers > n) {
    workers = n;
  }
  std::atomic<size_t> next{0};
  auto body = [&] {
    // Dynamic scheduling in small chunks: crypto work per item is uniform but
    // this keeps tail latency low when n is not a multiple of the worker
    // count.
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t w = 0; w + 1 < workers; w++) {
    threads.emplace_back(body);
  }
  body();
  for (auto& t : threads) {
    t.join();
  }
}

size_t HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace atom
