// Data-parallel helper used to parallelize per-ciphertext crypto work
// (shuffle rerandomization, reencryption, proof batches) across cores.
//
// The paper's Figure 7 measures exactly this: how one mixing iteration speeds
// up with core count. ParallelFor lets benches pin the worker count.
#ifndef SRC_UTIL_PARALLEL_H_
#define SRC_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace atom {

// Runs fn(i) for i in [0, n) using up to `workers` threads. With workers <= 1
// runs inline on the caller's thread. fn must be safe to call concurrently
// for distinct i. Blocks until all iterations complete.
void ParallelFor(size_t workers, size_t n,
                 const std::function<void(size_t)>& fn);

// Number of hardware threads (>= 1).
size_t HardwareThreads();

}  // namespace atom

#endif  // SRC_UTIL_PARALLEL_H_
