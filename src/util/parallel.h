// Persistent worker pool shared by the data-parallel crypto loops
// (ParallelFor: shuffle rerandomization, reencryption, proof batches,
// submission-proof verification in Round::SubmitNizkBatch/SubmitTrapBatch,
// exit-phase KEM decryption), the round engine's dependency-scheduled
// hop, sort, check, and finalize tasks (src/core/engine.h), and — via
// SerialExecutor — the message-delivery buses: LocalBus drain tasks and
// the TCP transport's inbound handler queue (src/net/node_process.h),
// whose socket reader threads hand protocol work to the pool instead of
// processing it on the blocking read path.
//
// The paper's Figure 7 measures exactly what ParallelFor provides: how one
// mixing iteration speeds up with core count. Before the engine refactor
// every ParallelFor call spawned and joined fresh std::threads — pure churn
// on the per-ciphertext hot path; now both intra-hop parallelism and
// cross-group/cross-layer pipelining run on one shared set of threads, so
// they compose instead of oversubscribing the machine.
#ifndef SRC_UTIL_PARALLEL_H_
#define SRC_UTIL_PARALLEL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

namespace atom {

class ThreadPool {
 public:
  // Spawns `num_threads` persistent workers (at least one).
  explicit ThreadPool(size_t num_threads);
  // Drains queued tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  // Enqueues an independent task. Tasks may Submit further tasks and may
  // run For() regions; they must not block waiting for a task that has not
  // been submitted yet, and must not let exceptions escape (there is no
  // caller to rethrow to — an escaping exception terminates the process).
  //
  // `weight` orders the ready queue: workers always take the
  // highest-weight queued task, FIFO among equal weights (so weight-0
  // callers keep the pool's historical FIFO behavior exactly). The round
  // engine uses this to drain deep/exit-stage hops before fresh intake
  // (latency-aware scheduling); the TCP transport runs its sender-lane
  // drains above the crypto so sealed frames never wait behind queued
  // mixing work. Weights order only — a finite task set (the hop DAG is
  // one) cannot starve.
  void Submit(std::function<void()> task, int64_t weight = 0);

  // Runs fn(i) for i in [0, n) using up to `max_workers` threads. The
  // caller participates (claims iterations itself), so the region completes
  // even when every pool thread is busy — which makes nested use from pool
  // tasks deadlock-free. Blocks until all iterations finish. If fn throws,
  // the first exception is captured and rethrown on the caller after the
  // region drains; remaining unclaimed iterations are skipped.
  void For(size_t max_workers, size_t n, const std::function<void(size_t)>& fn);

  // Process-wide pool with HardwareThreads() workers, created on first use.
  static ThreadPool& Shared();

 private:
  struct ForState;
  // One parked task plus its telemetry: the weight class it was admitted
  // under (transport / engine / default — see WeightClass in parallel.cpp)
  // and, when obs::TimingEnabled(), its enqueue timestamp so the worker
  // that dequeues it can record queue dwell. A default-constructed
  // timestamp means "not sampled".
  struct QueuedTask {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued{};
    uint8_t weight_class = 0;
  };
  static void RunSlice(ForState& state);
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  // Ready queue ordered by weight (descending); multimap keeps equal
  // weights in insertion order, so this degenerates to the old FIFO deque
  // when every caller uses the default weight.
  std::multimap<int64_t, QueuedTask, std::greater<int64_t>> tasks_;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

// Runs fn(i) for i in [0, n) using up to `workers` threads of the shared
// pool. With workers <= 1 runs inline on the caller's thread. fn must be
// safe to call concurrently for distinct i. Blocks until all iterations
// complete; rethrows the first exception fn throws.
void ParallelFor(size_t workers, size_t n,
                 const std::function<void(size_t)>& fn);

// FIFO serial queue on top of a ThreadPool: tasks run one at a time, in
// submission order, as pool tasks — never more than one in flight. This is
// the per-server message discipline shared by LocalBus (which implements
// it inline for many servers) and the TCP transport's NodeProcess (one
// server per process; socket reader threads Submit inbound deliveries
// here so handlers run on the pool, in arrival order, off the blocking
// read path). Tasks must not throw (same contract as ThreadPool::Submit)
// and must not block on later submissions.
class SerialExecutor {
 public:
  // Uses `pool`, or ThreadPool::Shared() when null.
  explicit SerialExecutor(ThreadPool* pool = nullptr);
  // Drains outstanding tasks before returning.
  ~SerialExecutor();

  SerialExecutor(const SerialExecutor&) = delete;
  SerialExecutor& operator=(const SerialExecutor&) = delete;

  // Enqueues a task; schedules a pump task on the pool if none is active.
  // Thread-safe.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted before this call has finished.
  void Drain();

 private:
  void Pump();

  ThreadPool* pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool active_ = false;  // a pump task is scheduled or running
};

// Number of hardware threads (>= 1).
size_t HardwareThreads();

}  // namespace atom

#endif  // SRC_UTIL_PARALLEL_H_
