#include "src/util/rng.h"

#include <algorithm>
#include <random>

#include "src/util/chacha_core.h"
#include "src/util/check.h"

namespace atom {

Rng::Rng(BytesView seed) {
  // Longer seeds would be silently truncated — callers must hash down first.
  ATOM_CHECK(seed.size() <= 32);
  key_.fill(0);
  std::copy_n(seed.begin(), seed.size(), key_.begin());
  nonce_.fill(0);
}

Rng::Rng(uint64_t seed) {
  key_.fill(0);
  for (int i = 0; i < 8; i++) {
    key_[static_cast<size_t>(i)] = static_cast<uint8_t>(seed >> (8 * i));
  }
  nonce_.fill(0);
}

Rng Rng::FromOsEntropy() {
  std::random_device rd;
  std::array<uint8_t, 32> seed;
  for (size_t i = 0; i < seed.size(); i += 4) {
    uint32_t word = rd();
    seed[i] = static_cast<uint8_t>(word);
    seed[i + 1] = static_cast<uint8_t>(word >> 8);
    seed[i + 2] = static_cast<uint8_t>(word >> 16);
    seed[i + 3] = static_cast<uint8_t>(word >> 24);
  }
  return Rng(BytesView(seed));
}

void Rng::Refill() {
  ChaCha20Block(key_.data(), counter_, nonce_.data(), block_.data());
  counter_++;
  ATOM_CHECK(counter_ != 0);  // 256 GiB per instance is plenty; never wrap.
  used_ = 0;
}

void Rng::Fill(uint8_t* out, size_t n) {
  while (n > 0) {
    if (used_ == 64) {
      Refill();
    }
    size_t take = std::min<size_t>(n, 64 - used_);
    std::copy_n(block_.begin() + static_cast<ptrdiff_t>(used_), take, out);
    used_ += take;
    out += take;
    n -= take;
  }
}

Bytes Rng::NextBytes(size_t n) {
  Bytes out(n);
  Fill(out.data(), n);
  return out;
}

uint64_t Rng::NextU64() {
  uint8_t buf[8];
  Fill(buf, 8);
  uint64_t v = 0;
  for (int i = 0; i < 8; i++) {
    v |= static_cast<uint64_t>(buf[i]) << (8 * i);
  }
  return v;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  ATOM_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - (UINT64_MAX % bound);
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return v % bound;
}

Rng Rng::Fork() {
  Bytes child_seed = NextBytes(32);
  return Rng(BytesView(child_seed));
}

std::array<uint8_t, 32> DeriveSubKey(const std::array<uint8_t, 32>& root,
                                     uint64_t salt_a, uint64_t salt_b) {
  // nonce = salt_a (8 bytes LE) || low half of salt_b; counter = high half
  // of salt_b. Each (salt_a, salt_b) pair selects a distinct keystream
  // block, so subkeys are independent PRF outputs under the single root.
  std::array<uint8_t, 12> nonce;
  for (size_t i = 0; i < 8; i++) {
    nonce[i] = static_cast<uint8_t>(salt_a >> (8 * i));
  }
  for (size_t i = 0; i < 4; i++) {
    nonce[8 + i] = static_cast<uint8_t>(salt_b >> (8 * i));
  }
  uint32_t counter = static_cast<uint32_t>(salt_b >> 32);
  std::array<uint8_t, 64> block;
  ChaCha20Block(root.data(), counter, nonce.data(), block.data());
  std::array<uint8_t, 32> key;
  std::copy(block.begin(), block.begin() + 32, key.begin());
  return key;
}

}  // namespace atom
