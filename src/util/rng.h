// Deterministic cryptographic random number generator (ChaCha20 DRBG).
//
// Every protocol component takes an Rng& so that multi-party protocol runs
// are reproducible in tests (seed it) and unpredictable in deployment
// (Rng::FromOsEntropy). The generator is NOT thread-safe; use one per thread.
#ifndef SRC_UTIL_RNG_H_
#define SRC_UTIL_RNG_H_

#include <array>
#include <cstdint>

#include "src/util/bytes.h"

namespace atom {

// Key-separates a 256-bit DRBG root key: returns the first 32 bytes of the
// ChaCha20 keystream under `root` at the (nonce, counter) encoding of
// (salt_a, salt_b). Single-key PRF output at distinct inputs — distinct
// salts give cryptographically independent subkeys (no related-key
// caveats), deterministically replayable from the root. Used to give
// every engine hop and bus delivery a private generator.
std::array<uint8_t, 32> DeriveSubKey(const std::array<uint8_t, 32>& root,
                                     uint64_t salt_a, uint64_t salt_b = 0);

class Rng {
 public:
  // Seeds the generator from a 32-byte key. Shorter seeds are zero-padded.
  explicit Rng(BytesView seed);

  // Convenience: seed from a 64-bit integer (tests).
  explicit Rng(uint64_t seed);

  // Seeds from the operating system's entropy source.
  static Rng FromOsEntropy();

  // Fills `out` with random bytes.
  void Fill(uint8_t* out, size_t n);

  // Returns n random bytes.
  Bytes NextBytes(size_t n);

  // Uniform random 64-bit value.
  uint64_t NextU64();

  // Uniform value in [0, bound) via rejection sampling; bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  // Forks a child generator whose stream is independent of future output of
  // this one (key-separates on the next 32 bytes of our stream).
  Rng Fork();

 private:
  void Refill();

  std::array<uint8_t, 32> key_;
  std::array<uint8_t, 12> nonce_;
  uint32_t counter_ = 0;
  std::array<uint8_t, 64> block_;
  size_t used_ = 64;  // bytes of block_ already consumed
};

}  // namespace atom

#endif  // SRC_UTIL_RNG_H_
