// Minimal binary serialization: little-endian writer/reader over Bytes.
// Every protocol message and ciphertext in this project serializes through
// these two classes so that hashing (Fiat-Shamir transcripts, commitments)
// has a single canonical encoding.
#ifndef SRC_UTIL_SERDE_H_
#define SRC_UTIL_SERDE_H_

#include <cstdint>
#include <optional>

#include "src/util/bytes.h"
#include "src/util/check.h"

namespace atom {

// Appends primitive values to an owned buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  // Pre-sizes the buffer for a writer whose output size is known up
  // front. Hot encode paths (envelope fan-out) compute their exact size
  // and reserve once instead of growing geometrically.
  explicit ByteWriter(size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

  void Reserve(size_t total_bytes) { buf_.reserve(total_bytes); }

  void U8(uint8_t v) { buf_.push_back(v); }

  void U16(uint16_t v) {
    U8(static_cast<uint8_t>(v));
    U8(static_cast<uint8_t>(v >> 8));
  }

  void U32(uint32_t v) {
    U16(static_cast<uint16_t>(v));
    U16(static_cast<uint16_t>(v >> 16));
  }

  void U64(uint64_t v) {
    U32(static_cast<uint32_t>(v));
    U32(static_cast<uint32_t>(v >> 32));
  }

  // Raw bytes without a length prefix (for fixed-size fields).
  void Raw(BytesView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }

  // Length-prefixed (u32) variable-size byte string.
  void Var(BytesView data) {
    U32(static_cast<uint32_t>(data.size()));
    Raw(data);
  }

  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

// Reads primitive values back out; all accessors return std::nullopt once the
// buffer is exhausted or malformed. Callers propagate failure — a malformed
// message from a peer is a recoverable protocol fault, not a crash.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  std::optional<uint8_t> U8() {
    if (pos_ + 1 > data_.size()) {
      return std::nullopt;
    }
    return data_[pos_++];
  }

  std::optional<uint16_t> U16() {
    auto lo = U8();
    auto hi = U8();
    if (!lo || !hi) {
      return std::nullopt;
    }
    return static_cast<uint16_t>(*lo | (*hi << 8));
  }

  std::optional<uint32_t> U32() {
    auto lo = U16();
    auto hi = U16();
    if (!lo || !hi) {
      return std::nullopt;
    }
    return static_cast<uint32_t>(*lo) | (static_cast<uint32_t>(*hi) << 16);
  }

  std::optional<uint64_t> U64() {
    auto lo = U32();
    auto hi = U32();
    if (!lo || !hi) {
      return std::nullopt;
    }
    return static_cast<uint64_t>(*lo) | (static_cast<uint64_t>(*hi) << 32);
  }

  // Fixed-size read.
  std::optional<Bytes> Raw(size_t n) {
    if (pos_ + n > data_.size()) {
      return std::nullopt;
    }
    Bytes out(data_.begin() + static_cast<ptrdiff_t>(pos_),
              data_.begin() + static_cast<ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  // Length-prefixed read matching ByteWriter::Var.
  std::optional<Bytes> Var() {
    auto n = U32();
    if (!n) {
      return std::nullopt;
    }
    return Raw(*n);
  }

  bool Done() const { return pos_ == data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  BytesView data_;
  size_t pos_ = 0;
};

}  // namespace atom

#endif  // SRC_UTIL_SERDE_H_
