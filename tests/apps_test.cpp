// Tests for the application layer (bulletin board, dialing mailboxes,
// DP dummies) and the Riposte / Vuvuzela baselines.
#include <gtest/gtest.h>

#include <numeric>

#include "src/apps/dialing.h"
#include "src/apps/microblog.h"
#include "src/baselines/riposte.h"
#include "src/baselines/vuvuzela.h"
#include "src/util/rng.h"

namespace atom {
namespace {

TEST(Microblog, PostsStripPadding) {
  BulletinBoard board;
  Bytes padded = ToBytes("hello world");
  padded.resize(160, 0);
  std::vector<Bytes> round = {padded};
  board.PostRound(7, round);
  ASSERT_EQ(board.posts().size(), 1u);
  EXPECT_EQ(board.posts()[0].content, ToBytes("hello world"));
  EXPECT_EQ(board.posts()[0].round, 7u);
}

TEST(Microblog, RenderEscapesNonPrintable) {
  BulletinBoard board;
  std::vector<Bytes> round = {Bytes{'h', 'i', 0x01, '!'}};
  board.PostRound(1, round);
  auto rendered = board.RenderRound(1);
  ASSERT_EQ(rendered.size(), 1u);
  EXPECT_EQ(rendered[0], "hi.!");
  EXPECT_TRUE(board.RenderRound(2).empty());
}

// ---------------------------------------------------------------- dialing --

TEST(Dialing, RequestRoundTrip) {
  Rng rng(1000u);
  auto bob = KemKeyGen(rng);
  Bytes payload = rng.NextBytes(kDialPayloadLen);
  Bytes request = MakeDialRequest(42, bob.pk, BytesView(payload), rng);
  EXPECT_EQ(request.size(), kDialMessageLen);
  EXPECT_EQ(DialRecipient(BytesView(request)), 42u);

  auto opened = OpenDialRequest(42, bob.sk, BytesView(request));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, payload);
}

TEST(Dialing, WrongRecipientCannotOpen) {
  Rng rng(1001u);
  auto bob = KemKeyGen(rng);
  auto eve = KemKeyGen(rng);
  Bytes payload = rng.NextBytes(kDialPayloadLen);
  Bytes request = MakeDialRequest(42, bob.pk, BytesView(payload), rng);
  EXPECT_FALSE(OpenDialRequest(42, eve.sk, BytesView(request)).has_value());
  EXPECT_FALSE(OpenDialRequest(43, bob.sk, BytesView(request)).has_value());
}

TEST(Dialing, MailboxRouting) {
  Rng rng(1002u);
  MailboxSystem boxes(16);
  auto key = KemKeyGen(rng);
  Bytes payload(kDialPayloadLen, 1);
  std::vector<Bytes> messages;
  for (uint64_t id : {0ull, 16ull, 5ull, 21ull, 15ull}) {
    messages.push_back(MakeDialRequest(id, key.pk, BytesView(payload), rng));
  }
  messages.push_back(ToBytes("garbage"));  // must be dropped
  EXPECT_EQ(boxes.Deliver(messages), 1u);
  EXPECT_EQ(boxes.mailbox(0).size(), 2u);   // ids 0 and 16
  EXPECT_EQ(boxes.mailbox(5).size(), 2u);   // ids 5 and 21
  EXPECT_EQ(boxes.mailbox(15).size(), 1u);  // id 15
  EXPECT_EQ(boxes.mailbox(3).size(), 0u);
}

TEST(Dialing, DummyCountsCenterOnMu) {
  Rng rng(1003u);
  double total = 0;
  constexpr int kTrials = 500;
  for (int i = 0; i < kTrials; i++) {
    total += static_cast<double>(SampleDummyCount(13000, 500, rng));
  }
  EXPECT_NEAR(total / kTrials, 13000, 200);
}

TEST(Dialing, DummiesLookLikeRealDials) {
  Rng rng(1004u);
  auto dummies = MakeDummyDials(20, 1 << 20, rng);
  ASSERT_EQ(dummies.size(), 20u);
  MailboxSystem boxes(64);
  EXPECT_EQ(boxes.Deliver(dummies), 0u);  // all parse as real dials
  for (const auto& d : dummies) {
    EXPECT_EQ(d.size(), kDialMessageLen);
  }
}

// ---------------------------------------------------------------- riposte --

TEST(Riposte, DpfPointFunctionCorrect) {
  Rng rng(1010u);
  DpfParams params = DpfParams::For(64, 8);
  Bytes msg = ToBytes("8 bytes!");
  for (size_t alpha : {0u, 7u, 31u, 63u}) {
    auto keys = DpfGen(params, alpha, BytesView(msg), rng);
    Bytes a = DpfEval(keys.a);
    Bytes b = DpfEval(keys.b);
    ASSERT_EQ(a.size(), b.size());
    for (size_t slot = 0; slot < params.Slots(); slot++) {
      Bytes combined(8);
      for (size_t i = 0; i < 8; i++) {
        combined[i] = static_cast<uint8_t>(a[slot * 8 + i] ^
                                           b[slot * 8 + i]);
      }
      if (slot == alpha) {
        EXPECT_EQ(combined, msg) << "slot " << slot;
      } else {
        EXPECT_EQ(combined, Bytes(8, 0)) << "slot " << slot;
      }
    }
  }
}

TEST(Riposte, SingleKeyRevealsNothingObvious) {
  // One server's expansion must look pseudorandom: in particular it must
  // not contain the message in the clear at the target slot.
  Rng rng(1011u);
  DpfParams params = DpfParams::For(16, 8);
  Bytes msg = ToBytes("secret!!");
  auto keys = DpfGen(params, 5, BytesView(msg), rng);
  Bytes a = DpfEval(keys.a);
  Bytes at_slot(a.begin() + 5 * 8, a.begin() + 6 * 8);
  EXPECT_NE(at_slot, msg);
  EXPECT_NE(at_slot, Bytes(8, 0));
}

TEST(Riposte, FullWriteRoundRecoversMessages) {
  Rng rng(1012u);
  DpfParams params = DpfParams::For(32, 16);
  RiposteServer server_a(params), server_b(params);
  Bytes m1 = ToBytes("anonymous post 1");
  Bytes m2 = ToBytes("anonymous post 2");
  auto k1 = DpfGen(params, 3, BytesView(m1), rng);
  auto k2 = DpfGen(params, 17, BytesView(m2), rng);
  server_a.ApplyWrite(k1.a);
  server_b.ApplyWrite(k1.b);
  server_a.ApplyWrite(k2.a);
  server_b.ApplyWrite(k2.b);

  const RiposteServer* servers[] = {&server_a, &server_b};
  Bytes db = CombineReplicas(servers);
  EXPECT_EQ(Bytes(db.begin() + 3 * 16, db.begin() + 4 * 16), m1);
  EXPECT_EQ(Bytes(db.begin() + 17 * 16, db.begin() + 18 * 16), m2);
  // Untouched slots are zero.
  EXPECT_EQ(Bytes(db.begin(), db.begin() + 16), Bytes(16, 0));
}

TEST(Riposte, CostEstimateScalesQuadratically) {
  // Server work per round is Θ(M²): doubling M quadruples the round time.
  Rng rng(1013u);
  auto small = EstimateRiposteRound(100'000, 160, 36, rng);
  auto big = EstimateRiposteRound(200'000, 160, 36, rng);
  EXPECT_GT(big.round_seconds, small.round_seconds * 2.5);
  EXPECT_LT(big.round_seconds, small.round_seconds * 6.0);
}

// --------------------------------------------------------------- vuvuzela --

TEST(Vuvuzela, OnionPipelineDeliversPayloads) {
  Rng rng(1020u);
  VuvuzelaChain chain(3, rng);
  std::vector<Bytes> sent;
  std::vector<Bytes> batch;
  for (int i = 0; i < 10; i++) {
    Bytes payload = rng.NextBytes(32);
    sent.push_back(payload);
    batch.push_back(chain.Wrap(BytesView(payload), rng));
  }
  auto out = chain.Process(batch, rng);
  ASSERT_EQ(out.size(), 10u);
  // Same multiset of payloads, likely different order.
  auto sorted_sent = sent, sorted_out = out;
  std::sort(sorted_sent.begin(), sorted_sent.end());
  std::sort(sorted_out.begin(), sorted_out.end());
  EXPECT_EQ(sorted_sent, sorted_out);
}

TEST(Vuvuzela, MalformedOnionsDropped) {
  Rng rng(1021u);
  VuvuzelaChain chain(2, rng);
  std::vector<Bytes> batch = {chain.Wrap(BytesView(ToBytes("ok")), rng),
                              ToBytes("not an onion at all......")};
  auto out = chain.Process(batch, rng);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Vuvuzela, EstimateScalesLinearly) {
  CostModel cm = CostModel::PaperTable3();
  double t1 = EstimateVuvuzelaDialing(1'000'000, 0, 3, 36, cm);
  double t2 = EstimateVuvuzelaDialing(2'000'000, 0, 3, 36, cm);
  EXPECT_NEAR(t2 / t1, 2.0, 0.2);
}

}  // namespace
}  // namespace atom
