// Integration tests for the core Atom protocol: message formats, client
// submissions, single group hops (Algorithms 1 & 2), full rounds in both
// variants, fault tolerance, malicious-server detection, and blame.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>

#include "src/core/round.h"
#include "src/crypto/kem.h"
#include "src/util/hex.h"
#include "src/util/rng.h"

namespace atom {
namespace {

// ------------------------------------------------------------- messages --

TEST(MessageLayout, NizkLayoutMatchesPaperSizes) {
  // 160-byte microblog message: ceil(160/30) = 6 points.
  auto layout = LayoutFor(Variant::kNizk, 160);
  EXPECT_EQ(layout.padded_len, 160u);
  EXPECT_EQ(layout.num_points, 6u);
  // 80-byte dialing message: 3 points.
  EXPECT_EQ(LayoutFor(Variant::kNizk, 80).num_points, 3u);
}

TEST(MessageLayout, TrapLayoutAddsKemOverhead) {
  auto layout = LayoutFor(Variant::kTrap, 160);
  EXPECT_EQ(layout.padded_len, 1 + kKemOverhead + 160);
  EXPECT_EQ(layout.num_points, (layout.padded_len + 29) / 30);
}

TEST(MessageFormat, FragmentReassembleRoundTrip) {
  Rng rng(700u);
  for (size_t len : {30u, 82u, 160u, 210u}) {
    MessageLayout layout{len, len, (len + 29) / 30};
    Bytes data = rng.NextBytes(len);
    auto points = FragmentToPoints(BytesView(data), layout);
    auto back = ReassembleFromPoints(points, layout);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, data);
  }
}

TEST(MessageFormat, TrapRoundTrip) {
  Rng rng(701u);
  auto layout = LayoutFor(Variant::kTrap, 64);
  Bytes nonce = rng.NextBytes(kTrapNonceLen);
  Bytes trap = MakeTrapPlaintext(17, BytesView(nonce), layout);
  EXPECT_EQ(trap.size(), layout.padded_len);
  auto parsed = ParseTrap(BytesView(trap));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->gid, 17u);
  EXPECT_EQ(parsed->nonce, nonce);
  EXPECT_FALSE(ParseMessage(BytesView(trap)).has_value());
}

TEST(MessageFormat, MessageRoundTrip) {
  Rng rng(702u);
  auto layout = LayoutFor(Variant::kTrap, 64);
  Bytes inner = rng.NextBytes(layout.padded_len - 1);
  Bytes msg = MakeMessagePlaintext(BytesView(inner), layout);
  auto parsed = ParseMessage(BytesView(msg));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, inner);
  EXPECT_FALSE(ParseTrap(BytesView(msg)).has_value());
}

TEST(MessageFormat, DummyPlaintextsAreRecognized) {
  Rng rng(704u);
  auto layout = LayoutFor(Variant::kTrap, 64);
  Bytes dummy = MakeDummyPlaintext(layout, rng);
  EXPECT_EQ(dummy.size(), layout.padded_len);
  EXPECT_TRUE(IsDummy(BytesView(dummy)));
  // Dummies collide with neither traps nor messages nor ordinary bytes.
  EXPECT_FALSE(ParseTrap(BytesView(dummy)).has_value());
  EXPECT_FALSE(ParseMessage(BytesView(dummy)).has_value());
  Bytes user = PadTo(BytesView(ToBytes("Dear friend, meet at dawn")), 64);
  EXPECT_FALSE(IsDummy(BytesView(user)));
  // Two dummies differ (random filler).
  Bytes dummy2 = MakeDummyPlaintext(layout, rng);
  EXPECT_NE(dummy, dummy2);
}

TEST(MessageFormat, CommitmentIsBindingToContent) {
  Rng rng(703u);
  auto layout = LayoutFor(Variant::kTrap, 64);
  Bytes nonce = rng.NextBytes(kTrapNonceLen);
  Bytes trap1 = MakeTrapPlaintext(1, BytesView(nonce), layout);
  Bytes trap2 = MakeTrapPlaintext(2, BytesView(nonce), layout);
  EXPECT_NE(CommitTrap(BytesView(trap1)), CommitTrap(BytesView(trap2)));
}

TEST(Params, ValidateCatchesIncoherentConfigs) {
  AtomParams good;
  good.num_servers = 6;
  good.num_groups = 4;
  good.group_size = 3;
  EXPECT_TRUE(good.Validate().empty());

  AtomParams p = good;
  p.group_size = 0;
  EXPECT_FALSE(p.Validate().empty());

  p = good;
  p.num_servers = 2;  // smaller than group_size
  EXPECT_FALSE(p.Validate().empty());

  p = good;
  p.honest_needed = 4;  // more honest than the group holds
  EXPECT_FALSE(p.Validate().empty());

  p = good;
  p.topology = TopologyKind::kButterfly;
  p.num_groups = 3;  // not a power of two
  EXPECT_FALSE(p.Validate().empty());
  p.num_groups = 4;
  EXPECT_TRUE(p.Validate().empty());
}

// --------------------------------------------------------------- client --

TEST(Client, NizkSubmissionVerifies) {
  Rng rng(710u);
  auto kp = ElGamalKeyGen(rng);
  auto layout = LayoutFor(Variant::kNizk, 160);
  auto sub = MakeNizkSubmission(kp.pk, 3, BytesView(ToBytes("post")), layout,
                                rng);
  EXPECT_TRUE(VerifyNizkSubmission(kp.pk, sub, layout));
  // Replay at a different group id fails.
  sub.entry_gid = 4;
  EXPECT_FALSE(VerifyNizkSubmission(kp.pk, sub, layout));
}

TEST(Client, TrapSubmissionVerifies) {
  Rng rng(711u);
  auto group = ElGamalKeyGen(rng);
  auto trustee = ElGamalKeyGen(rng);
  auto layout = LayoutFor(Variant::kTrap, 160);
  TrapSubmissionSecrets secrets;
  auto sub = MakeTrapSubmission(group.pk, 5, trustee.pk,
                                BytesView(ToBytes("whistle")), layout, rng,
                                &secrets);
  EXPECT_TRUE(VerifyTrapSubmission(group.pk, sub, layout));
  EXPECT_EQ(sub.first.size(), sub.second.size());  // indistinguishable sizes
  EXPECT_EQ(CommitTrap(BytesView(secrets.trap_plaintext)),
            sub.trap_commitment);
}

TEST(Client, TrapOrderIsRandomized) {
  Rng rng(712u);
  auto group = ElGamalKeyGen(rng);
  auto trustee = ElGamalKeyGen(rng);
  auto layout = LayoutFor(Variant::kTrap, 32);
  int first_is_trap = 0;
  for (int i = 0; i < 40; i++) {
    TrapSubmissionSecrets secrets;
    MakeTrapSubmission(group.pk, 0, trustee.pk, BytesView(ToBytes("m")),
                       layout, rng, &secrets);
    first_is_trap += secrets.first_is_trap ? 1 : 0;
  }
  EXPECT_GT(first_is_trap, 5);
  EXPECT_LT(first_is_trap, 35);
}

// ------------------------------------------------------------ group hop --

struct HopFixture {
  Rng rng{uint64_t{720}};
  DkgParams dkg_params{3, 3};  // 3 servers, anytrust (h = 1)
  GroupRuntime group{0, RunDkg(dkg_params, rng)};
  GroupRuntime next_a{1, RunDkg(dkg_params, rng)};
  GroupRuntime next_b{2, RunDkg(dkg_params, rng)};

  CiphertextBatch MakeBatch(size_t n, size_t l) {
    CiphertextBatch batch(n);
    for (size_t i = 0; i < n; i++) {
      for (size_t c = 0; c < l; c++) {
        Bytes payload = {static_cast<uint8_t>(i), static_cast<uint8_t>(c)};
        batch[i].push_back(
            ElGamalEncrypt(group.pk(), *EmbedMessage(BytesView(payload)),
                           rng));
      }
    }
    return batch;
  }

  Scalar SecretOf(const GroupRuntime& g) {
    std::vector<Share> shares;
    for (const auto& key : g.dkg().keys) {
      shares.push_back(Share{key.index, key.share});
    }
    auto s = ShamirReconstruct(shares, g.dkg().pub.params.threshold);
    EXPECT_TRUE(s.has_value());
    return *s;
  }
};

TEST(GroupHop, TrapVariantForwardsDecryptably) {
  HopFixture f;
  auto batch = f.MakeBatch(6, 2);
  std::vector<Point> next_pks = {f.next_a.pk(), f.next_b.pk()};
  auto hop = f.group.RunHop(batch, next_pks, Variant::kTrap, f.rng);
  ASSERT_FALSE(hop.aborted) << hop.abort_reason;
  ASSERT_EQ(hop.batches.size(), 2u);
  EXPECT_EQ(hop.batches[0].size() + hop.batches[1].size(), 6u);

  // Each forwarded batch decrypts under the destination group's secret.
  std::set<std::string> plaintexts;
  for (size_t b = 0; b < 2; b++) {
    Scalar secret = f.SecretOf(b == 0 ? f.next_a : f.next_b);
    for (const auto& vec : hop.batches[b]) {
      for (const auto& ct : vec) {
        auto m = ElGamalDecrypt(secret, ct);
        ASSERT_TRUE(m.has_value());
        auto bytes = ExtractMessage(*m);
        ASSERT_TRUE(bytes.has_value());
        plaintexts.insert(HexEncode(BytesView(*bytes)));
      }
    }
  }
  EXPECT_EQ(plaintexts.size(), 12u);  // all 6 x 2 component payloads survive
}

TEST(GroupHop, NizkVariantHonestRunSucceeds) {
  HopFixture f;
  auto batch = f.MakeBatch(4, 1);
  std::vector<Point> next_pks = {f.next_a.pk()};
  auto hop = f.group.RunHop(batch, next_pks, Variant::kNizk, f.rng);
  EXPECT_FALSE(hop.aborted) << hop.abort_reason;
  EXPECT_GT(hop.stats.shuffle_seconds, 0.0);
  EXPECT_GT(hop.stats.verify_seconds, 0.0);
}

TEST(GroupHop, NizkCatchesShuffleTampering) {
  HopFixture f;
  auto batch = f.MakeBatch(4, 1);
  std::vector<Point> next_pks = {f.next_a.pk()};
  for (uint32_t bad_server : {1u, 2u, 3u}) {
    MaliciousAction evil{MaliciousAction::Kind::kTamperDuringShuffle,
                         bad_server, 2};
    auto hop = f.group.RunHop(batch, next_pks, Variant::kNizk, f.rng, 1,
                              &evil);
    EXPECT_TRUE(hop.aborted);
    EXPECT_NE(hop.abort_reason.find("shuffle"), std::string::npos);
  }
}

TEST(GroupHop, NizkCatchesReEncTampering) {
  HopFixture f;
  auto batch = f.MakeBatch(4, 1);
  std::vector<Point> next_pks = {f.next_a.pk()};
  MaliciousAction evil{MaliciousAction::Kind::kTamperDuringReEnc, 2, 1};
  auto hop = f.group.RunHop(batch, next_pks, Variant::kNizk, f.rng, 1, &evil);
  EXPECT_TRUE(hop.aborted);
  EXPECT_NE(hop.abort_reason.find("reencryption"), std::string::npos);
}

TEST(GroupHop, NizkCatchesDuplication) {
  HopFixture f;
  auto batch = f.MakeBatch(4, 1);
  std::vector<Point> next_pks = {f.next_a.pk()};
  MaliciousAction evil{MaliciousAction::Kind::kDuplicateDuringShuffle, 1, 0};
  auto hop = f.group.RunHop(batch, next_pks, Variant::kNizk, f.rng, 1, &evil);
  EXPECT_TRUE(hop.aborted);
}

TEST(GroupHop, ExitLayerYieldsPlaintexts) {
  HopFixture f;
  auto batch = f.MakeBatch(4, 2);
  auto hop = f.group.RunHop(batch, {}, Variant::kTrap, f.rng);
  ASSERT_FALSE(hop.aborted);
  ASSERT_EQ(hop.batches.size(), 1u);
  auto points = ExitPlaintexts(hop.batches[0]);
  ASSERT_TRUE(points.has_value());
  std::set<std::string> seen;
  for (const auto& vec : *points) {
    for (const Point& p : vec) {
      auto bytes = ExtractMessage(p);
      ASSERT_TRUE(bytes.has_value());
      seen.insert(HexEncode(BytesView(*bytes)));
    }
  }
  EXPECT_EQ(seen.size(), 8u);
}

// -------------------------------------------------- many-trust / failures --

TEST(GroupHop, ToleratesOneFailureWithHTwo) {
  Rng rng(730u);
  DkgParams params{4, 3};  // k=4, threshold 3 => h=2
  GroupRuntime group(0, RunDkg(params, rng));
  GroupRuntime next(1, RunDkg(params, rng));

  group.MarkFailed(2);
  EXPECT_EQ(group.AliveCount(), 3u);

  CiphertextBatch batch(3);
  for (size_t i = 0; i < 3; i++) {
    Bytes payload = {static_cast<uint8_t>(i)};
    batch[i].push_back(
        ElGamalEncrypt(group.pk(), *EmbedMessage(BytesView(payload)), rng));
  }
  std::vector<Point> next_pks = {next.pk()};
  auto hop = group.RunHop(batch, next_pks, Variant::kTrap, rng);
  ASSERT_FALSE(hop.aborted) << hop.abort_reason;

  // Forwarded ciphertexts decrypt under the next group (all 4 of its
  // servers' shares).
  std::vector<Share> shares;
  for (const auto& key : next.dkg().keys) {
    shares.push_back(Share{key.index, key.share});
  }
  Scalar secret = *ShamirReconstruct(std::span(shares).subspan(0, 3), 3);
  for (const auto& vec : hop.batches[0]) {
    auto m = ElGamalDecrypt(secret, vec[0]);
    ASSERT_TRUE(m.has_value());
    EXPECT_TRUE(ExtractMessage(*m).has_value());
  }
}

TEST(GroupHop, TooManyFailuresAborts) {
  Rng rng(731u);
  DkgParams params{4, 3};
  GroupRuntime group(0, RunDkg(params, rng));
  group.MarkFailed(1);
  group.MarkFailed(3);
  CiphertextBatch batch(1);
  batch[0].push_back(ElGamalEncrypt(
      group.pk(), *EmbedMessage(BytesView(ToBytes("x"))), rng));
  auto hop = group.RunHop(batch, {}, Variant::kTrap, rng);
  EXPECT_TRUE(hop.aborted);
  EXPECT_NE(hop.abort_reason.find("too few"), std::string::npos);
}

TEST(GroupHop, BuddyRecoveryRestoresGroup) {
  Rng rng(732u);
  DkgParams params{4, 3};
  GroupRuntime group(0, RunDkg(params, rng));

  // Server 2 escrows its share with a 3-server buddy group before failing.
  auto escrow = EscrowShare(group.dkg().keys[1], 3, 2, rng);
  group.MarkFailed(2);
  group.MarkFailed(4);
  EXPECT_EQ(group.AliveCount(), 2u);  // below threshold now

  CiphertextBatch batch(1);
  batch[0].push_back(ElGamalEncrypt(
      group.pk(), *EmbedMessage(BytesView(ToBytes("y"))), rng));
  EXPECT_TRUE(group.RunHop(batch, {}, Variant::kTrap, rng).aborted);

  // Buddies reconstruct server 2's share; a replacement server joins.
  auto recovered = RecoverShare(
      group.dkg().pub, 2, std::span(escrow.sub_shares).subspan(0, 2), 2);
  ASSERT_TRUE(recovered.has_value());
  group.Restore(*recovered);
  EXPECT_EQ(group.AliveCount(), 3u);
  auto hop = group.RunHop(batch, {}, Variant::kTrap, rng);
  EXPECT_FALSE(hop.aborted) << hop.abort_reason;
}

// --------------------------------------------------------------- trustees --

TEST(TrusteesTest, ReleasesKeyOnlyWhenAllReportsClean) {
  Rng rng(735u);
  Trustees trustees(4, 3, rng);

  auto report = [](uint32_t gid, bool traps_ok, bool inner_ok,
                   uint64_t traps, uint64_t inner) {
    GroupReport r;
    r.gid = gid;
    r.traps_ok = traps_ok;
    r.inner_ok = inner_ok;
    r.num_traps = traps;
    r.num_inner = inner;
    return r;
  };

  // All clean and balanced: key released and correct.
  std::vector<GroupReport> clean = {report(0, true, true, 3, 2),
                                    report(1, true, true, 1, 2)};
  auto key = trustees.MaybeReleaseKey(clean);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(Point::BaseMul(*key), trustees.round_pk());

  // One failed trap check: refused.
  std::vector<GroupReport> bad_trap = {report(0, false, true, 2, 2)};
  EXPECT_FALSE(trustees.MaybeReleaseKey(bad_trap).has_value());

  // One failed inner check: refused.
  std::vector<GroupReport> bad_inner = {report(0, true, false, 2, 2)};
  EXPECT_FALSE(trustees.MaybeReleaseKey(bad_inner).has_value());

  // Global count imbalance (a dropped message): refused.
  std::vector<GroupReport> imbalance = {report(0, true, true, 2, 1),
                                        report(1, true, true, 2, 2)};
  EXPECT_FALSE(trustees.MaybeReleaseKey(imbalance).has_value());
}

TEST(TrusteesTest, ReleasedKeyDecryptsInnerCiphertexts) {
  Rng rng(736u);
  Trustees trustees(3, 3, rng);
  Bytes msg = ToBytes("sealed until all clear");
  Bytes inner = KemEncrypt(trustees.round_pk(), BytesView(msg), rng);

  std::vector<GroupReport> clean = {GroupReport{0, true, true, 1, 1}};
  auto key = trustees.MaybeReleaseKey(clean);
  ASSERT_TRUE(key.has_value());
  auto dec = KemDecrypt(*key, BytesView(inner));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, msg);
}

// ------------------------------------------------------------ full round --

RoundConfig SmallConfig(Variant variant, size_t message_len = 48) {
  RoundConfig config;
  config.params.variant = variant;
  config.params.num_servers = 6;
  config.params.num_groups = 4;
  config.params.group_size = 3;
  config.params.honest_needed = 1;
  config.params.iterations = 3;
  config.params.message_len = message_len;
  config.beacon = ToBytes("test-beacon");
  return config;
}

TEST(FullRound, NizkVariantDeliversAllMessages) {
  Rng rng(740u);
  Round round(SmallConfig(Variant::kNizk), rng);

  std::set<std::string> sent;
  for (uint32_t u = 0; u < 8; u++) {
    uint32_t gid = u % round.NumGroups();
    Bytes msg = ToBytes("nizk message #" + std::to_string(u));
    sent.insert(HexEncode(BytesView(PadTo(BytesView(msg), 48))));
    auto sub = MakeNizkSubmission(round.EntryPk(gid), gid, BytesView(msg),
                                  round.layout(), rng);
    ASSERT_TRUE(round.SubmitNizk(sub));
  }

  auto result = round.Run(rng);
  ASSERT_FALSE(result.aborted) << result.abort_reason;
  ASSERT_EQ(result.plaintexts.size(), 8u);
  std::set<std::string> got;
  for (const auto& p : result.plaintexts) {
    got.insert(HexEncode(BytesView(p)));
  }
  EXPECT_EQ(got, sent);
}

TEST(FullRound, TrapVariantDeliversAllMessages) {
  Rng rng(741u);
  Round round(SmallConfig(Variant::kTrap), rng);

  std::set<std::string> sent;
  for (uint32_t u = 0; u < 8; u++) {
    uint32_t gid = u % round.NumGroups();
    Bytes msg = ToBytes("trap message #" + std::to_string(u));
    sent.insert(HexEncode(BytesView(PadTo(BytesView(msg), 48))));
    auto sub = MakeTrapSubmission(round.EntryPk(gid), gid, round.TrusteePk(),
                                  BytesView(msg), round.layout(), rng);
    ASSERT_TRUE(round.SubmitTrap(sub));
  }

  auto result = round.Run(rng);
  ASSERT_FALSE(result.aborted) << result.abort_reason;
  EXPECT_EQ(result.traps_seen, 8u);
  EXPECT_EQ(result.inner_seen, 8u);
  ASSERT_EQ(result.plaintexts.size(), 8u);
  std::set<std::string> got;
  for (const auto& p : result.plaintexts) {
    got.insert(HexEncode(BytesView(p)));
  }
  EXPECT_EQ(got, sent);
}

TEST(FullRound, TrapRoundRunsAgainAfterResubmission) {
  // A completed run consumes the submissions AND their trap commitments;
  // a fresh submit + Run cycle on the same Round (same keys, same epoch)
  // must succeed without the first run's commitments haunting the check.
  Rng rng(749u);
  Round round(SmallConfig(Variant::kTrap), rng);
  for (int run = 0; run < 2; run++) {
    for (uint32_t u = 0; u < 4; u++) {
      uint32_t gid = u % round.NumGroups();
      auto sub = MakeTrapSubmission(
          round.EntryPk(gid), gid, round.TrusteePk(),
          BytesView(ToBytes("run" + std::to_string(run))), round.layout(),
          rng);
      ASSERT_TRUE(round.SubmitTrap(sub));
    }
    auto result = round.Run(rng);
    ASSERT_FALSE(result.aborted) << "run " << run << ": "
                                 << result.abort_reason;
    EXPECT_EQ(result.plaintexts.size(), 4u) << "run " << run;
    EXPECT_EQ(result.traps_seen, 4u) << "run " << run;
  }
}

TEST(FullRound, TrapRoundRunsAgainAfterAnAbortedRun) {
  // Aborted runs drain the Round's submission state just like completed
  // ones, so a fresh honest batch after a disrupted round must succeed.
  Rng rng(754u);
  Round round(SmallConfig(Variant::kTrap), rng);
  for (uint32_t u = 0; u < 8; u++) {
    uint32_t gid = u % round.NumGroups();
    auto sub = MakeTrapSubmission(round.EntryPk(gid), gid, round.TrusteePk(),
                                  BytesView(ToBytes("doomed")),
                                  round.layout(), rng);
    ASSERT_TRUE(round.SubmitTrap(sub));
  }
  Round::Evil evil{0, 1,
                   {MaliciousAction::Kind::kDuplicateDuringShuffle, 1, 1}};
  ASSERT_TRUE(round.Run(rng, &evil).aborted);

  for (uint32_t u = 0; u < 4; u++) {
    uint32_t gid = u % round.NumGroups();
    auto sub = MakeTrapSubmission(round.EntryPk(gid), gid, round.TrusteePk(),
                                  BytesView(ToBytes("fresh")),
                                  round.layout(), rng);
    ASSERT_TRUE(round.SubmitTrap(sub));
  }
  auto result = round.Run(rng);
  ASSERT_FALSE(result.aborted) << result.abort_reason;
  EXPECT_EQ(result.plaintexts.size(), 4u);
}

TEST(FullRound, NizkVariantAbortsOnMaliciousServer) {
  Rng rng(742u);
  Round round(SmallConfig(Variant::kNizk), rng);
  // 16 users = 4 per entry group, so every group holds messages at every
  // layer (4 messages split 4 ways forwards one to each neighbour).
  for (uint32_t u = 0; u < 16; u++) {
    uint32_t gid = u % round.NumGroups();
    auto sub = MakeNizkSubmission(round.EntryPk(gid), gid,
                                  BytesView(ToBytes("m")), round.layout(),
                                  rng);
    ASSERT_TRUE(round.SubmitNizk(sub));
  }
  Round::Evil evil{1, 2, {MaliciousAction::Kind::kTamperDuringShuffle, 2, 0}};
  auto result = round.Run(rng, &evil);
  EXPECT_TRUE(result.aborted);
  EXPECT_NE(result.abort_reason.find("group 2"), std::string::npos);
}

TEST(FullRound, TrapVariantAbortsOnDuplication) {
  // Duplicating any ciphertext always trips a check at exit: a duplicated
  // trap double-spends its commitment, a duplicated message is a duplicate
  // inner ciphertext, and the overwritten victim goes missing.
  Rng rng(743u);
  Round round(SmallConfig(Variant::kTrap), rng);
  for (uint32_t u = 0; u < 8; u++) {
    uint32_t gid = u % round.NumGroups();
    auto sub = MakeTrapSubmission(round.EntryPk(gid), gid, round.TrusteePk(),
                                  BytesView(ToBytes("m")), round.layout(),
                                  rng);
    ASSERT_TRUE(round.SubmitTrap(sub));
  }
  Round::Evil evil{0, 1,
                   {MaliciousAction::Kind::kDuplicateDuringShuffle, 1, 1}};
  auto result = round.Run(rng, &evil);
  EXPECT_TRUE(result.aborted);
  EXPECT_NE(result.abort_reason.find("trustees refused"), std::string::npos);
}

TEST(FullRound, TrapTamperingEitherAbortsOrLosesExactlyOne) {
  // Mauling one ciphertext hits a trap (abort, probability ~1/2) or a real
  // message (that message is lost, everyone else unaffected) — the paper's
  // §4.4 security accounting. Either way no plaintext is ever *altered*.
  Rng rng(744u);
  int aborts = 0, losses = 0;
  for (int trial = 0; trial < 4; trial++) {
    Round round(SmallConfig(Variant::kTrap), rng);
    std::set<std::string> sent;
    for (uint32_t u = 0; u < 6; u++) {
      uint32_t gid = u % round.NumGroups();
      Bytes msg = ToBytes("t" + std::to_string(trial) + "u" +
                          std::to_string(u));
      sent.insert(HexEncode(BytesView(PadTo(BytesView(msg), 48))));
      auto sub = MakeTrapSubmission(round.EntryPk(gid), gid,
                                    round.TrusteePk(), BytesView(msg),
                                    round.layout(), rng);
      ASSERT_TRUE(round.SubmitTrap(sub));
    }
    Round::Evil evil{
        1, 0, {MaliciousAction::Kind::kTamperDuringReEnc, 2,
               static_cast<size_t>(trial)}};
    auto result = round.Run(rng, &evil);
    if (result.aborted) {
      aborts++;
    } else {
      losses++;
      EXPECT_EQ(result.plaintexts.size(), 5u);
      for (const auto& p : result.plaintexts) {
        EXPECT_TRUE(sent.contains(HexEncode(BytesView(p))))
            << "an altered plaintext leaked through";
      }
    }
  }
  EXPECT_EQ(aborts + losses, 4);
}

TEST(FullRound, SurvivesServerFailureWithManyTrust) {
  Rng rng(745u);
  RoundConfig config = SmallConfig(Variant::kTrap);
  config.params.honest_needed = 2;  // threshold 2 of 3: tolerate 1 failure
  Round round(config, rng);
  for (uint32_t u = 0; u < 4; u++) {
    uint32_t gid = u % round.NumGroups();
    auto sub = MakeTrapSubmission(round.EntryPk(gid), gid, round.TrusteePk(),
                                  BytesView(ToBytes("failover")),
                                  round.layout(), rng);
    ASSERT_TRUE(round.SubmitTrap(sub));
  }
  round.group(1).MarkFailed(2);
  round.group(3).MarkFailed(1);
  auto result = round.Run(rng);
  ASSERT_FALSE(result.aborted) << result.abort_reason;
  EXPECT_EQ(result.plaintexts.size(), 4u);
}

TEST(FullRound, BuddyEscrowRecoversCatastrophicFailure) {
  // §4.5 end to end at round level: group 2 loses two servers (beyond the
  // h-1 = 0 tolerance at h=1... use h=2 config so threshold is 2 of 3),
  // then buddy escrow restores them and the round completes.
  Rng rng(747u);
  RoundConfig config = SmallConfig(Variant::kTrap);
  config.params.group_size = 3;
  config.params.honest_needed = 2;  // threshold 2: tolerate 1 failure
  Round round(config, rng);
  round.EscrowAllShares(rng);

  for (uint32_t u = 0; u < 4; u++) {
    uint32_t gid = u % round.NumGroups();
    auto sub = MakeTrapSubmission(round.EntryPk(gid), gid, round.TrusteePk(),
                                  BytesView(ToBytes("survive")),
                                  round.layout(), rng);
    ASSERT_TRUE(round.SubmitTrap(sub));
  }

  // Two failures in group 2: beyond tolerance (only 1 alive < threshold 2).
  round.group(2).MarkFailed(1);
  round.group(2).MarkFailed(3);
  EXPECT_EQ(round.group(2).AliveCount(), 1u);

  // Recovery through the round-managed escrow.
  ASSERT_TRUE(round.RecoverServer(2, 1));
  EXPECT_EQ(round.group(2).AliveCount(), 2u);

  auto result = round.Run(rng);
  ASSERT_FALSE(result.aborted) << result.abort_reason;
  EXPECT_EQ(result.plaintexts.size(), 4u);
}

TEST(FullRound, RecoverServerFailsWithoutEscrow) {
  Rng rng(748u);
  Round round(SmallConfig(Variant::kTrap), rng);
  EXPECT_FALSE(round.RecoverServer(0, 1));  // EscrowAllShares never called
}

TEST(FullRound, RejectsInvalidSubmission) {
  Rng rng(746u);
  Round round(SmallConfig(Variant::kTrap), rng);
  auto sub = MakeTrapSubmission(round.EntryPk(0), 0, round.TrusteePk(),
                                BytesView(ToBytes("ok")), round.layout(),
                                rng);
  // Replay the same submission at another group: gid binding must reject.
  auto replay = sub;
  replay.entry_gid = 1;
  EXPECT_FALSE(round.SubmitTrap(replay));
  // Proof/ciphertext mismatch must reject.
  auto mangled = sub;
  mangled.first[0].c = mangled.first[0].c + Point::Generator();
  EXPECT_FALSE(round.SubmitTrap(mangled));
  EXPECT_TRUE(round.SubmitTrap(sub));
}

// ---------------------------------------------------------------- intake --

TEST(Intake, ConcurrentShardedSubmissionLosesNothing) {
  // Many client threads hammer every entry group at once; the sharded
  // intake must accept each valid submission exactly once — no losses, no
  // double counts — and the round must deliver exactly the submitted set.
  // (The TSan CI job gates the locking discipline here.)
  Rng rng(760u);
  Round round(SmallConfig(Variant::kNizk, 32), rng);

  constexpr size_t kThreads = 6;
  constexpr size_t kPerThread = 6;
  constexpr size_t kTotal = kThreads * kPerThread;
  std::vector<NizkSubmission> subs;
  std::set<std::string> sent;
  for (size_t i = 0; i < kTotal; i++) {
    uint32_t gid = static_cast<uint32_t>(i % round.NumGroups());
    Bytes msg = ToBytes("concurrent #" + std::to_string(i));
    sent.insert(HexEncode(BytesView(PadTo(BytesView(msg), 32))));
    auto sub = MakeNizkSubmission(round.EntryPk(gid), gid, BytesView(msg),
                                  round.layout(), rng);
    sub.client_id = i + 1;
    subs.push_back(std::move(sub));
  }

  std::atomic<size_t> accepted{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      // Interleaved slices: every thread touches every entry group.
      for (size_t i = t; i < kTotal; i += kThreads) {
        if (round.SubmitNizk(subs[i])) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(accepted.load(), kTotal);

  auto result = round.Run(rng);
  ASSERT_FALSE(result.aborted) << result.abort_reason;
  std::set<std::string> got;
  for (const auto& p : result.plaintexts) {
    got.insert(HexEncode(BytesView(p)));
  }
  EXPECT_EQ(result.plaintexts.size(), kTotal);  // set equality + size ==
  EXPECT_EQ(got, sent);                         // no duplicates hidden
}

TEST(Intake, ConcurrentDuplicateClientIdAcceptedExactlyOnce) {
  // Racing submissions that share one client id: exactly one thread wins,
  // every other gets false — never zero, never two.
  Rng rng(761u);
  Round round(SmallConfig(Variant::kNizk, 32), rng);

  constexpr size_t kThreads = 4;
  std::vector<NizkSubmission> subs;
  for (size_t i = 0; i < kThreads; i++) {
    auto sub = MakeNizkSubmission(round.EntryPk(0), 0,
                                  BytesView(ToBytes("race " +
                                                    std::to_string(i))),
                                  round.layout(), rng);
    sub.client_id = 42;
    subs.push_back(std::move(sub));
  }
  std::atomic<size_t> accepted{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      if (round.SubmitNizk(subs[t])) {
        accepted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(accepted.load(), 1u);
}

TEST(Intake, RejectsDuplicateClientIdWithinAnEngineRound) {
  // Regression: a second submission with the same client id used to be
  // silently double-counted (and poisoned the exit checks); now it must
  // return false, while anonymous submissions stay exempt and a drained
  // epoch resets the book.
  Rng rng(762u);
  Round round(SmallConfig(Variant::kTrap), rng);
  auto make = [&](uint64_t client_id, const char* msg) {
    auto sub = MakeTrapSubmission(round.EntryPk(0), 0, round.TrusteePk(),
                                  BytesView(ToBytes(msg)), round.layout(),
                                  rng);
    sub.client_id = client_id;
    return sub;
  };

  EXPECT_TRUE(round.SubmitTrap(make(7, "first")));
  // Same client id, fresh (valid) ciphertexts: rejected, not double-counted.
  EXPECT_FALSE(round.SubmitTrap(make(7, "second")));
  EXPECT_TRUE(round.SubmitTrap(make(8, "other client")));
  // Anonymous submissions opt out of the check.
  EXPECT_TRUE(round.SubmitTrap(make(kAnonymousClient, "anon one")));
  EXPECT_TRUE(round.SubmitTrap(make(kAnonymousClient, "anon two")));

  auto result = round.Run(rng);
  ASSERT_FALSE(result.aborted) << result.abort_reason;
  EXPECT_EQ(result.plaintexts.size(), 4u);  // the rejected one never ran
  EXPECT_EQ(result.traps_seen, 4u);

  // A new engine round is a new book: client 7 may submit again.
  EXPECT_TRUE(round.SubmitTrap(make(7, "next round")));
}

TEST(Intake, BatchSubmitVerifiesOnThePoolAndFiltersInvalid) {
  Rng rng(763u);
  Round round(SmallConfig(Variant::kNizk, 32), rng);

  std::vector<NizkSubmission> subs;
  std::set<std::string> want;
  for (size_t i = 0; i < 8; i++) {
    uint32_t gid = static_cast<uint32_t>(i % round.NumGroups());
    Bytes msg = ToBytes("batch #" + std::to_string(i));
    auto sub = MakeNizkSubmission(round.EntryPk(gid), gid, BytesView(msg),
                                  round.layout(), rng);
    sub.client_id = 100 + i;
    if (i != 3 && i != 6) {
      want.insert(HexEncode(BytesView(PadTo(BytesView(msg), 32))));
    }
    subs.push_back(std::move(sub));
  }
  // #3: mangled ciphertext (proof mismatch). #6: duplicate client id of
  // #2 — same entry group (ids are scoped to the client's entry group).
  subs[3].ciphertext[0].c = subs[3].ciphertext[0].c + Point::Generator();
  subs[6].client_id = subs[2].client_id;

  auto accepted = round.SubmitNizkBatch(subs, /*workers=*/4);
  ASSERT_EQ(accepted.size(), subs.size());
  for (size_t i = 0; i < subs.size(); i++) {
    EXPECT_EQ(accepted[i], i != 3 && i != 6) << "submission " << i;
  }

  auto result = round.Run(rng);
  ASSERT_FALSE(result.aborted) << result.abort_reason;
  std::set<std::string> got;
  for (const auto& p : result.plaintexts) {
    got.insert(HexEncode(BytesView(p)));
  }
  EXPECT_EQ(got, want);
}

// ----------------------------------------------------------------- blame --

TEST(Blame, IdentifiesUserWithBogusCommitment) {
  Rng rng(750u);
  Round round(SmallConfig(Variant::kTrap), rng);
  // Three honest users and one who lies about the commitment (all into
  // entry group 0 so blame inspects one group).
  for (int u = 0; u < 3; u++) {
    auto sub = MakeTrapSubmission(round.EntryPk(0), 0, round.TrusteePk(),
                                  BytesView(ToBytes("honest")),
                                  round.layout(), rng);
    ASSERT_TRUE(round.SubmitTrap(sub));
  }
  auto evil_sub = MakeTrapSubmission(round.EntryPk(0), 0, round.TrusteePk(),
                                     BytesView(ToBytes("evil")),
                                     round.layout(), rng);
  evil_sub.trap_commitment[0] ^= 0xff;  // commitment matches nothing
  ASSERT_TRUE(round.SubmitTrap(evil_sub));

  // The round aborts (missing expected trap), and blame names user 3.
  auto result = round.Run(rng);
  EXPECT_TRUE(result.aborted);
  auto blame = round.BlameEntryGroup(0);
  ASSERT_EQ(blame.bad_users.size(), 1u);
  EXPECT_EQ(blame.bad_users[0], 3u);
}

TEST(Blame, IdentifiesDuplicateInnerCiphertexts) {
  Rng rng(751u);
  Round round(SmallConfig(Variant::kTrap), rng);
  auto honest = MakeTrapSubmission(round.EntryPk(0), 0, round.TrusteePk(),
                                   BytesView(ToBytes("honest")),
                                   round.layout(), rng);
  ASSERT_TRUE(round.SubmitTrap(honest));

  // Two colluding users submit the same inner ciphertext (they can, since
  // they share plaintext and randomness out of band).
  auto layout = round.layout();
  Bytes inner = KemEncrypt(round.TrusteePk(),
                           BytesView(PadTo(BytesView(ToBytes("dup")),
                                           layout.plaintext_len)),
                           rng);
  for (int i = 0; i < 2; i++) {
    Bytes msg_plain = MakeMessagePlaintext(BytesView(inner), layout);
    Bytes nonce = rng.NextBytes(kTrapNonceLen);
    Bytes trap_plain = MakeTrapPlaintext(0, BytesView(nonce), layout);

    TrapSubmission sub;
    sub.entry_gid = 0;
    sub.trap_commitment = CommitTrap(BytesView(trap_plain));
    std::vector<Scalar> r1, r2;
    sub.first = ElGamalEncryptVec(
        round.EntryPk(0), FragmentToPoints(BytesView(msg_plain), layout), rng,
        &r1);
    sub.first_proofs = MakeEncProofVec(round.EntryPk(0), 0, sub.first, r1,
                                       rng);
    sub.second = ElGamalEncryptVec(
        round.EntryPk(0), FragmentToPoints(BytesView(trap_plain), layout),
        rng, &r2);
    sub.second_proofs = MakeEncProofVec(round.EntryPk(0), 0, sub.second, r2,
                                        rng);
    ASSERT_TRUE(round.SubmitTrap(sub));
  }

  auto result = round.Run(rng);
  EXPECT_TRUE(result.aborted);  // duplicate inner ciphertexts detected
  auto blame = round.BlameEntryGroup(0);
  EXPECT_EQ(blame.bad_users, (std::vector<size_t>{1, 2}));
}

TEST(Blame, SecondRunBlamesOnlyItsOwnSubmissions) {
  // Run 1 completes cleanly; run 2 contains one cheater. Blame indices
  // must refer to run 2's submission order, not a list polluted by run 1.
  Rng rng(753u);
  Round round(SmallConfig(Variant::kTrap), rng);
  for (int u = 0; u < 3; u++) {
    auto sub = MakeTrapSubmission(round.EntryPk(0), 0, round.TrusteePk(),
                                  BytesView(ToBytes("round-one")),
                                  round.layout(), rng);
    ASSERT_TRUE(round.SubmitTrap(sub));
  }
  ASSERT_FALSE(round.Run(rng).aborted);

  auto honest = MakeTrapSubmission(round.EntryPk(0), 0, round.TrusteePk(),
                                   BytesView(ToBytes("round-two")),
                                   round.layout(), rng);
  ASSERT_TRUE(round.SubmitTrap(honest));
  auto evil_sub = MakeTrapSubmission(round.EntryPk(0), 0, round.TrusteePk(),
                                     BytesView(ToBytes("round-two-evil")),
                                     round.layout(), rng);
  evil_sub.trap_commitment[0] ^= 0xff;
  ASSERT_TRUE(round.SubmitTrap(evil_sub));

  auto result = round.Run(rng);
  EXPECT_TRUE(result.aborted);
  auto blame = round.BlameEntryGroup(0);
  ASSERT_EQ(blame.bad_users.size(), 1u);
  EXPECT_EQ(blame.bad_users[0], 1u);  // index within run 2, not 4
}

TEST(Blame, HonestUsersAreNotBlamed) {
  Rng rng(752u);
  Round round(SmallConfig(Variant::kTrap), rng);
  for (int u = 0; u < 4; u++) {
    auto sub = MakeTrapSubmission(round.EntryPk(0), 0, round.TrusteePk(),
                                  BytesView(ToBytes("fine")), round.layout(),
                                  rng);
    ASSERT_TRUE(round.SubmitTrap(sub));
  }
  auto blame = round.BlameEntryGroup(0);
  EXPECT_TRUE(blame.bad_users.empty());
}

}  // namespace
}  // namespace atom
