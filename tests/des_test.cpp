// Tests for the discrete-event engine and the §4.7 staggering simulation.
#include <gtest/gtest.h>

#include "src/sim/stagger.h"
#include "src/sim/des.h"

namespace atom {
namespace {

TEST(EventQueueTest, ProcessesInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(3.0, [&] { order.push_back(3); });
  queue.Schedule(1.0, [&] { order.push_back(1); });
  queue.Schedule(2.0, [&] { order.push_back(2); });
  queue.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueueTest, SimultaneousEventsFifo) {
  EventQueue queue;
  std::vector<int> order;
  queue.Schedule(1.0, [&] { order.push_back(1); });
  queue.Schedule(1.0, [&] { order.push_back(2); });
  queue.Schedule(1.0, [&] { order.push_back(3); });
  queue.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue queue;
  double second_fired = 0;
  queue.Schedule(1.0, [&] {
    queue.Schedule(queue.now() + 2.0, [&] { second_fired = queue.now(); });
  });
  queue.Run();
  EXPECT_DOUBLE_EQ(second_fired, 3.0);
}

TEST(SimHostTest, SingleCoreSerializes) {
  EventQueue queue;
  SimHost host(&queue, 1);
  std::vector<double> finishes;
  queue.Schedule(0.0, [&] {
    host.Submit(2.0, [&](double t) { finishes.push_back(t); });
    host.Submit(3.0, [&](double t) { finishes.push_back(t); });
  });
  queue.Run();
  ASSERT_EQ(finishes.size(), 2u);
  EXPECT_DOUBLE_EQ(finishes[0], 2.0);
  EXPECT_DOUBLE_EQ(finishes[1], 5.0);  // queued behind the first job
  EXPECT_DOUBLE_EQ(host.busy_core_seconds(), 5.0);
}

TEST(SimHostTest, MultiCoreRunsInParallel) {
  EventQueue queue;
  SimHost host(&queue, 2);
  std::vector<double> finishes;
  queue.Schedule(0.0, [&] {
    host.Submit(2.0, [&](double t) { finishes.push_back(t); });
    host.Submit(3.0, [&](double t) { finishes.push_back(t); });
  });
  queue.Run();
  ASSERT_EQ(finishes.size(), 2u);
  EXPECT_DOUBLE_EQ(finishes[0], 2.0);
  EXPECT_DOUBLE_EQ(finishes[1], 3.0);  // own core
}

TEST(SimHostTest, LateSubmissionStartsAtNow) {
  EventQueue queue;
  SimHost host(&queue, 1);
  double finish = 0;
  queue.Schedule(5.0, [&] {
    host.Submit(1.0, [&](double t) { finish = t; });
  });
  queue.Run();
  EXPECT_DOUBLE_EQ(finish, 6.0);
}

// ---------------------------------------------------------------- stagger --

TEST(StaggerSim, SingleChainMatchesClosedForm) {
  // One group of 4 on dedicated hosts: makespan = 4 steps + 3 links.
  NetworkModel net = NetworkModel::Uniform(4, 1, 100e6);
  LayerSimConfig config;
  config.groups = {{0, 1, 2, 3}};
  config.step_seconds = 2.0;
  config.hop_latency_seconds = 0.04;  // same cluster: 40 ms in the model
  auto result = SimulateLayer(config, net);
  EXPECT_NEAR(result.makespan_seconds, 4 * 2.0 + 3 * 0.04, 1e-9);
}

TEST(StaggerSim, LayoutsHaveFixedVsRotatingPositions) {
  auto aligned = AlignedLayout(16, 4);
  // In the aligned layout each server's position is fixed across groups.
  std::vector<int> position(16, -1);
  for (const auto& group : aligned) {
    for (size_t j = 0; j < group.size(); j++) {
      if (position[group[j]] == -1) {
        position[group[j]] = static_cast<int>(j);
      }
      EXPECT_EQ(position[group[j]], static_cast<int>(j));
    }
  }
  // The staggered layout moves at least some servers across positions.
  auto staggered = StaggeredLayout(16, 4);
  bool any_moved = false;
  std::vector<int> first_pos(16, -1);
  for (const auto& group : staggered) {
    for (size_t j = 0; j < group.size(); j++) {
      if (first_pos[group[j]] == -1) {
        first_pos[group[j]] = static_cast<int>(j);
      } else if (first_pos[group[j]] != static_cast<int>(j)) {
        any_moved = true;
      }
    }
  }
  EXPECT_TRUE(any_moved);
}

TEST(StaggerSim, StaggeringImprovesMakespanAndUtilization) {
  // The aligned layout pipelines (it is systolic) but pays warm-up/drain
  // idle at every position class; staggering gives every server one chain
  // step per wave, pushing utilization toward 1 and shaving the makespan.
  NetworkModel net = NetworkModel::Uniform(64, 1, 100e6);
  LayerSimConfig config;
  config.step_seconds = 1.0;
  config.hop_latency_seconds = 0.01;

  config.groups = AlignedLayout(64, 8);
  auto aligned = SimulateLayer(config, net);
  config.groups = StaggeredLayout(64, 8);
  auto staggered = SimulateLayer(config, net);

  EXPECT_LT(staggered.makespan_seconds, aligned.makespan_seconds * 0.95);
  EXPECT_GT(staggered.utilization, 0.9);
  EXPECT_LT(aligned.utilization, 0.85);
}

TEST(StaggerSim, WorkConservation) {
  // Total busy core-seconds is layout-independent: G groups x k steps.
  NetworkModel net = NetworkModel::Uniform(16, 2, 100e6);
  LayerSimConfig config;
  config.step_seconds = 0.5;
  config.hop_latency_seconds = 0.0;
  double expected_busy = 16.0 * 4 * 0.5;

  for (auto layout : {AlignedLayout(16, 4), StaggeredLayout(16, 4)}) {
    config.groups = layout;
    auto result = SimulateLayer(config, net);
    // utilization * capacity == busy
    double busy = result.utilization * result.makespan_seconds * 16 * 2;
    EXPECT_NEAR(busy, expected_busy, 1e-6);
  }
}

}  // namespace
}  // namespace atom
