// Tests for Shamir/Feldman secret sharing, the joint-Feldman DKG, threshold
// ElGamal reencryption, and buddy-group share escrow / recovery.
#include <gtest/gtest.h>

#include <numeric>

#include "src/crypto/dkg.h"
#include "src/crypto/shamir.h"
#include "src/crypto/sigma.h"
#include "src/crypto/threshold.h"
#include "src/util/rng.h"

namespace atom {
namespace {

TEST(Shamir, ReconstructFromAnySubset) {
  Rng rng(500u);
  Scalar secret = Scalar::Random(rng);
  auto shares = ShamirShare(secret, /*threshold=*/3, /*n=*/5, rng);
  ASSERT_EQ(shares.size(), 5u);

  // Every 3-subset reconstructs.
  for (size_t a = 0; a < 5; a++) {
    for (size_t b = a + 1; b < 5; b++) {
      for (size_t c = b + 1; c < 5; c++) {
        std::vector<Share> subset = {shares[a], shares[b], shares[c]};
        auto rec = ShamirReconstruct(subset, 3);
        ASSERT_TRUE(rec.has_value());
        EXPECT_EQ(*rec, secret);
      }
    }
  }
}

TEST(Shamir, TooFewSharesFail) {
  Rng rng(501u);
  Scalar secret = Scalar::Random(rng);
  auto shares = ShamirShare(secret, 3, 5, rng);
  std::vector<Share> two = {shares[0], shares[1]};
  EXPECT_FALSE(ShamirReconstruct(two, 3).has_value());
}

TEST(Shamir, TwoOfTwoThreshold) {
  Rng rng(502u);
  Scalar secret = Scalar::Random(rng);
  auto shares = ShamirShare(secret, 2, 2, rng);
  auto rec = ShamirReconstruct(shares, 2);
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(*rec, secret);
}

TEST(Shamir, DuplicateIndicesRejected) {
  Rng rng(503u);
  Scalar secret = Scalar::Random(rng);
  auto shares = ShamirShare(secret, 2, 3, rng);
  std::vector<Share> dup = {shares[0], shares[0]};
  EXPECT_FALSE(ShamirReconstruct(dup, 2).has_value());
}

TEST(Shamir, WrongShareGivesWrongSecret) {
  Rng rng(504u);
  Scalar secret = Scalar::Random(rng);
  auto shares = ShamirShare(secret, 2, 3, rng);
  shares[1].value = shares[1].value + Scalar::One();
  auto rec = ShamirReconstruct(std::span(shares).subspan(0, 2), 2);
  ASSERT_TRUE(rec.has_value());
  EXPECT_FALSE(*rec == secret);
}

TEST(Shamir, LagrangeIdentity) {
  // Σ λ_i·i-th-power-basis sanity: reconstruct f(0) for f(x) = 7 + 3x.
  std::vector<uint32_t> subset = {2, 5};
  Scalar f2 = Scalar::FromU64(7 + 3 * 2);
  Scalar f5 = Scalar::FromU64(7 + 3 * 5);
  Scalar rec = LagrangeCoefficient(subset, 2) * f2 +
               LagrangeCoefficient(subset, 5) * f5;
  EXPECT_EQ(rec, Scalar::FromU64(7));
}

TEST(Feldman, SharesVerify) {
  Rng rng(505u);
  Scalar secret = Scalar::Random(rng);
  auto dealing = FeldmanDeal(secret, 3, 5, rng);
  EXPECT_EQ(FeldmanPublicKey(dealing.commitments), Point::BaseMul(secret));
  for (const Share& s : dealing.shares) {
    EXPECT_TRUE(FeldmanVerifyShare(dealing.commitments, s));
  }
}

TEST(Feldman, CorruptShareFailsVerification) {
  Rng rng(506u);
  auto dealing = FeldmanDeal(Scalar::Random(rng), 3, 5, rng);
  Share bad = dealing.shares[2];
  bad.value = bad.value + Scalar::One();
  EXPECT_FALSE(FeldmanVerifyShare(dealing.commitments, bad));
  Share zero_index = dealing.shares[0];
  zero_index.index = 0;
  EXPECT_FALSE(FeldmanVerifyShare(dealing.commitments, zero_index));
}

// -------------------------------------------------------------------- DKG

TEST(Dkg, HonestRunProducesConsistentKeys) {
  Rng rng(510u);
  DkgParams params{/*k=*/5, /*threshold=*/4};
  auto result = RunDkg(params, rng);
  EXPECT_TRUE(result.pub.disqualified.empty());
  ASSERT_EQ(result.keys.size(), 5u);

  // Every share matches its public verification key.
  for (size_t i = 0; i < 5; i++) {
    EXPECT_EQ(Point::BaseMul(result.keys[i].share), result.pub.share_pks[i]);
  }
  // Any threshold subset reconstructs a secret matching the group key.
  std::vector<Share> shares;
  for (const auto& key : result.keys) {
    shares.push_back(Share{key.index, key.share});
  }
  auto secret = ShamirReconstruct(std::span(shares).subspan(0, 4), 4);
  ASSERT_TRUE(secret.has_value());
  EXPECT_EQ(Point::BaseMul(*secret), result.pub.group_pk);
}

TEST(Dkg, CheatingDealerIsDisqualified) {
  Rng rng(511u);
  DkgParams params{5, 4};
  std::vector<uint32_t> cheaters = {2};
  auto result = RunDkg(params, rng, cheaters);
  ASSERT_EQ(result.pub.disqualified.size(), 1u);
  EXPECT_EQ(result.pub.disqualified[0], 2u);

  // The remaining aggregate is still a consistent sharing.
  std::vector<Share> shares;
  for (const auto& key : result.keys) {
    shares.push_back(Share{key.index, key.share});
  }
  auto secret = ShamirReconstruct(std::span(shares).subspan(1, 4), 4);
  ASSERT_TRUE(secret.has_value());
  EXPECT_EQ(Point::BaseMul(*secret), result.pub.group_pk);
}

TEST(Dkg, MultipleCheatersDisqualified) {
  Rng rng(512u);
  DkgParams params{6, 4};
  std::vector<uint32_t> cheaters = {1, 4};
  auto result = RunDkg(params, rng, cheaters);
  EXPECT_EQ(result.pub.disqualified.size(), 2u);
}

TEST(Dkg, AnytrustGroupIsThresholdK) {
  // h = 1 (plain anytrust): threshold = k, all servers must participate.
  Rng rng(513u);
  DkgParams params{4, 4};
  auto result = RunDkg(params, rng);
  std::vector<Share> shares;
  for (const auto& key : result.keys) {
    shares.push_back(Share{key.index, key.share});
  }
  EXPECT_FALSE(ShamirReconstruct(std::span(shares).subspan(0, 3), 4)
                   .has_value());
  auto secret = ShamirReconstruct(shares, 4);
  ASSERT_TRUE(secret.has_value());
  EXPECT_EQ(Point::BaseMul(*secret), result.pub.group_pk);
}

// -------------------------------------------------------- threshold ReEnc

struct ThresholdFixture {
  Rng rng{uint64_t{520}};
  DkgParams params{/*k=*/5, /*threshold=*/4};  // h = 2
  DkgResult dkg = RunDkg(params, rng);
  Point m = *EmbedMessage(BytesView(ToBytes("threshold msg")));
};

TEST(ThresholdElGamal, DecryptWithAnyQuorum) {
  ThresholdFixture f;
  auto ct = ElGamalEncrypt(f.dkg.pub.group_pk, f.m, f.rng);
  // Any 4-of-5 subset decrypts (server 5 down, server 1 down, ...).
  for (uint32_t down = 1; down <= 5; down++) {
    std::vector<uint32_t> subset;
    for (uint32_t i = 1; i <= 5; i++) {
      if (i != down) {
        subset.push_back(i);
      }
    }
    auto dec = ThresholdDecrypt(f.dkg.pub, f.dkg.keys, subset, ct);
    ASSERT_TRUE(dec.has_value()) << "down=" << down;
    EXPECT_EQ(*dec, f.m);
  }
}

TEST(ThresholdElGamal, WrongSubsetSizeRejected) {
  ThresholdFixture f;
  auto ct = ElGamalEncrypt(f.dkg.pub.group_pk, f.m, f.rng);
  std::vector<uint32_t> too_few = {1, 2, 3};
  EXPECT_FALSE(ThresholdDecrypt(f.dkg.pub, f.dkg.keys, too_few, ct)
                   .has_value());
}

TEST(ThresholdElGamal, WeightedReEncChainAcrossGroups) {
  // The full Atom §4.5 flow: group A (threshold 4-of-5) reencrypts toward
  // group B (threshold 2-of-3) using weighted shares; group B then decrypts.
  ThresholdFixture f;
  DkgParams params_b{3, 2};
  auto dkg_b = RunDkg(params_b, f.rng);

  auto ct = ElGamalEncrypt(f.dkg.pub.group_pk, f.m, f.rng);
  std::vector<uint32_t> subset_a = {1, 2, 4, 5};  // server 3 is down
  for (uint32_t idx : subset_a) {
    Scalar w = WeightedShare(f.dkg.keys[idx - 1], subset_a);
    ct = ElGamalReEnc(w, &dkg_b.pub.group_pk, ct, f.rng);
  }
  ct = ElGamalFinalizeHop(ct);

  std::vector<uint32_t> subset_b = {1, 3};
  auto dec = ThresholdDecrypt(dkg_b.pub, dkg_b.keys, subset_b, ct);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, f.m);
}

TEST(ThresholdElGamal, WeightedReEncProofVerifies) {
  // A server's ReEncProof in the threshold setting verifies against its
  // Lagrange-weighted public key, which anyone can derive.
  ThresholdFixture f;
  auto next = ElGamalKeyGen(f.rng);
  auto ct = ElGamalEncrypt(f.dkg.pub.group_pk, f.m, f.rng);
  std::vector<uint32_t> subset = {1, 2, 3, 4};

  Scalar w = WeightedShare(f.dkg.keys[0], subset);
  Point w_pub = WeightedSharePublic(f.dkg.pub, 1, subset);
  EXPECT_EQ(Point::BaseMul(w), w_pub);

  Scalar rewrap;
  auto out = ElGamalReEnc(w, &next.pk, ct, f.rng, &rewrap);
  auto proof = MakeReEncProof(w, w_pub, &next.pk, ct, out, rewrap, f.rng);
  EXPECT_TRUE(VerifyReEncProof(w_pub, &next.pk, ct, out, proof));
}

// ----------------------------------------------------------- buddy escrow

TEST(BuddyEscrow, RecoverLostShare) {
  ThresholdFixture f;
  // Server 3 escrows its share with a 4-server buddy group, threshold 3.
  auto escrow = EscrowShare(f.dkg.keys[2], 4, 3, f.rng);
  ASSERT_EQ(escrow.sub_shares.size(), 4u);

  // Server 3 fails; buddies 1, 2, 4 reconstruct.
  std::vector<Share> subs = {escrow.sub_shares[0], escrow.sub_shares[1],
                             escrow.sub_shares[3]};
  auto recovered = RecoverShare(f.dkg.pub, 3, subs, 3);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->index, 3u);
  EXPECT_EQ(recovered->share, f.dkg.keys[2].share);
}

TEST(BuddyEscrow, RecoveredShareIsUsable) {
  ThresholdFixture f;
  auto escrow = EscrowShare(f.dkg.keys[4], 3, 2, f.rng);
  std::vector<Share> subs = {escrow.sub_shares[1], escrow.sub_shares[2]};
  auto recovered = RecoverShare(f.dkg.pub, 5, subs, 2);
  ASSERT_TRUE(recovered.has_value());

  // Use the recovered share in a threshold decryption.
  auto ct = ElGamalEncrypt(f.dkg.pub.group_pk, f.m, f.rng);
  std::vector<DkgServerKey> keys = f.dkg.keys;
  keys[4] = *recovered;
  std::vector<uint32_t> subset = {1, 2, 3, 5};
  auto dec = ThresholdDecrypt(f.dkg.pub, keys, subset, ct);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, f.m);
}

TEST(BuddyEscrow, CorruptSubShareDetected) {
  ThresholdFixture f;
  auto escrow = EscrowShare(f.dkg.keys[0], 3, 2, f.rng);
  auto subs = escrow.sub_shares;
  subs[0].value = subs[0].value + Scalar::One();
  // Reconstruction succeeds arithmetically but fails the public-key check.
  EXPECT_FALSE(RecoverShare(f.dkg.pub, 1,
                            std::span(subs).subspan(0, 2), 2)
                   .has_value());
}

TEST(BuddyEscrow, WrongOwnerRejected) {
  ThresholdFixture f;
  auto escrow = EscrowShare(f.dkg.keys[0], 3, 2, f.rng);
  EXPECT_FALSE(RecoverShare(f.dkg.pub, 2,
                            std::span(escrow.sub_shares).subspan(0, 2), 2)
                   .has_value());
}

}  // namespace
}  // namespace atom
