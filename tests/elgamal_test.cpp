// Tests for the Atom rerandomizable ElGamal cryptosystem (Appendix A) and
// the IND-CCA2 hybrid KEM.
#include <gtest/gtest.h>

#include "src/crypto/elgamal.h"
#include "src/crypto/kem.h"
#include "src/util/rng.h"

namespace atom {
namespace {

TEST(ElGamal, EncryptDecryptRoundTrip) {
  Rng rng(100u);
  auto kp = ElGamalKeyGen(rng);
  auto m = EmbedMessage(BytesView(ToBytes("hello anonymity")));
  ASSERT_TRUE(m.has_value());
  auto ct = ElGamalEncrypt(kp.pk, *m, rng);
  auto dec = ElGamalDecrypt(kp.sk, ct);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, *m);
  EXPECT_EQ(*ExtractMessage(*dec), ToBytes("hello anonymity"));
}

TEST(ElGamal, DecryptWithWrongKeyGivesGarbage) {
  Rng rng(101u);
  auto kp = ElGamalKeyGen(rng);
  auto other = ElGamalKeyGen(rng);
  auto m = EmbedMessage(BytesView(ToBytes("msg")));
  auto ct = ElGamalEncrypt(kp.pk, *m, rng);
  auto dec = ElGamalDecrypt(other.sk, ct);
  ASSERT_TRUE(dec.has_value());
  EXPECT_FALSE(*dec == *m);
}

TEST(ElGamal, RerandomizePreservesPlaintextAndChangesCiphertext) {
  Rng rng(102u);
  auto kp = ElGamalKeyGen(rng);
  auto m = EmbedMessage(BytesView(ToBytes("rerand me")));
  auto ct = ElGamalEncrypt(kp.pk, *m, rng);
  auto ct2 = ElGamalRerandomize(kp.pk, ct, rng);
  ASSERT_TRUE(ct2.has_value());
  EXPECT_FALSE(*ct2 == ct);  // fresh randomness
  auto dec = ElGamalDecrypt(kp.sk, *ct2);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, *m);
}

TEST(ElGamal, RerandomizeRejectsMidHopCiphertext) {
  Rng rng(103u);
  auto kp = ElGamalKeyGen(rng);
  auto next = ElGamalKeyGen(rng);
  auto m = EmbedMessage(BytesView(ToBytes("m")));
  auto ct = ElGamalEncrypt(kp.pk, *m, rng);
  auto mid = ElGamalReEnc(kp.sk, &next.pk, ct, rng);  // Y != ⊥ now
  EXPECT_FALSE(mid.YIsNull());
  EXPECT_FALSE(ElGamalRerandomize(kp.pk, mid, rng).has_value());
  EXPECT_FALSE(ElGamalDecrypt(kp.sk, mid).has_value());
}

// The defining property of the Atom cryptosystem: a chain of servers can
// strip a group's layers out of order with the rewrap toward the next group
// interleaved, and the result is a clean encryption under the next key.
TEST(ElGamal, OutOfOrderReEncAcrossGroups) {
  Rng rng(104u);
  // Group 1 has three servers; the group key is the sum of their keys.
  auto s1 = ElGamalKeyGen(rng), s2 = ElGamalKeyGen(rng),
       s3 = ElGamalKeyGen(rng);
  Point group1_pk = s1.pk + s2.pk + s3.pk;
  // Group 2 has two servers.
  auto t1 = ElGamalKeyGen(rng), t2 = ElGamalKeyGen(rng);
  Point group2_pk = t1.pk + t2.pk;

  auto m = EmbedMessage(BytesView(ToBytes("through the mix")));
  auto ct = ElGamalEncrypt(group1_pk, *m, rng);

  // Each group-1 server strips its own layer and adds randomness for
  // group 2 — note server order does not matter for correctness.
  ct = ElGamalReEnc(s2.sk, &group2_pk, ct, rng);
  ct = ElGamalReEnc(s3.sk, &group2_pk, ct, rng);
  ct = ElGamalReEnc(s1.sk, &group2_pk, ct, rng);
  ct = ElGamalFinalizeHop(ct);

  // The result must now be a plain encryption under group 2's key.
  ASSERT_TRUE(ct.YIsNull());
  ct = ElGamalReEnc(t2.sk, nullptr, ct, rng);
  ct = ElGamalReEnc(t1.sk, nullptr, ct, rng);
  ct = ElGamalFinalizeHop(ct);
  auto dec = ElGamalDecrypt(Scalar::Zero(), ct);  // layers all stripped
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*ExtractMessage(*dec), ToBytes("through the mix"));
}

TEST(ElGamal, MultiHopThroughFourGroups) {
  Rng rng(105u);
  constexpr int kGroups = 4, kServersPerGroup = 3;
  std::vector<std::vector<ElGamalKeypair>> groups(kGroups);
  std::vector<Point> group_pks(kGroups, Point::Infinity());
  for (int g = 0; g < kGroups; g++) {
    for (int s = 0; s < kServersPerGroup; s++) {
      groups[g].push_back(ElGamalKeyGen(rng));
      group_pks[g] = group_pks[g] + groups[g].back().pk;
    }
  }

  auto m = EmbedMessage(BytesView(ToBytes("4 hops")));
  auto ct = ElGamalEncrypt(group_pks[0], *m, rng);
  for (int g = 0; g < kGroups; g++) {
    const Point* next = (g + 1 < kGroups) ? &group_pks[g + 1] : nullptr;
    for (int s = 0; s < kServersPerGroup; s++) {
      ct = ElGamalReEnc(groups[g][s].sk, next, ct, rng);
    }
    ct = ElGamalFinalizeHop(ct);
  }
  auto dec = ElGamalDecrypt(Scalar::Zero(), ct);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*ExtractMessage(*dec), ToBytes("4 hops"));
}

TEST(ElGamal, CiphertextEncodeDecodeRoundTrip) {
  Rng rng(106u);
  auto kp = ElGamalKeyGen(rng);
  auto m = EmbedMessage(BytesView(ToBytes("serialize")));
  auto ct = ElGamalEncrypt(kp.pk, *m, rng);
  auto next = ElGamalKeyGen(rng);
  auto mid = ElGamalReEnc(kp.sk, &next.pk, ct, rng);  // exercise Y != ⊥ too
  for (const auto& c : {ct, mid}) {
    Bytes enc = c.Encode();
    auto back = ElGamalCiphertext::Decode(BytesView(enc));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, c);
  }
}

TEST(ElGamal, DecodeRejectsMalformed) {
  Bytes junk(ElGamalCiphertext::kEncodedSize, 0x5a);
  EXPECT_FALSE(ElGamalCiphertext::Decode(BytesView(junk)).has_value());
  Bytes short_buf(10, 0);
  EXPECT_FALSE(ElGamalCiphertext::Decode(BytesView(short_buf)).has_value());
}

TEST(ElGamal, VectorRoundTrip) {
  Rng rng(107u);
  auto kp = ElGamalKeyGen(rng);
  std::vector<Point> ms;
  for (int i = 0; i < 5; i++) {
    Bytes chunk = rng.NextBytes(kEmbedCapacity);
    ms.push_back(*EmbedMessage(BytesView(chunk)));
  }
  auto cts = ElGamalEncryptVec(kp.pk, ms, rng);
  auto dec = ElGamalDecryptVec(kp.sk, cts);
  ASSERT_TRUE(dec.has_value());
  ASSERT_EQ(dec->size(), ms.size());
  for (size_t i = 0; i < ms.size(); i++) {
    EXPECT_EQ((*dec)[i], ms[i]);
  }
}

TEST(ElGamal, VectorEncodeDecodeRoundTrip) {
  Rng rng(108u);
  auto kp = ElGamalKeyGen(rng);
  std::vector<Point> ms = {*EmbedMessage(BytesView(ToBytes("a"))),
                           *EmbedMessage(BytesView(ToBytes("b")))};
  auto cts = ElGamalEncryptVec(kp.pk, ms, rng);
  Bytes enc = EncodeCiphertextVec(cts);
  auto back = DecodeCiphertextVec(BytesView(enc));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, cts);
  // Trailing garbage must be rejected.
  enc.push_back(0);
  EXPECT_FALSE(DecodeCiphertextVec(BytesView(enc)).has_value());
}

// ---------------------------------------------------------------- KEM --

TEST(Kem, RoundTrip) {
  Rng rng(110u);
  auto kp = KemKeyGen(rng);
  Bytes msg = ToBytes("dialing: here is my public key");
  Bytes ct = KemEncrypt(kp.pk, BytesView(msg), rng);
  EXPECT_EQ(ct.size(), msg.size() + kKemOverhead);
  auto dec = KemDecrypt(kp.sk, BytesView(ct));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, msg);
}

TEST(Kem, WrongKeyFails) {
  Rng rng(111u);
  auto kp = KemKeyGen(rng);
  auto other = KemKeyGen(rng);
  Bytes ct = KemEncrypt(kp.pk, BytesView(ToBytes("msg")), rng);
  EXPECT_FALSE(KemDecrypt(other.sk, BytesView(ct)).has_value());
}

TEST(Kem, NonMalleable) {
  // IND-CCA2 in practice: flipping any ciphertext bit breaks decryption.
  Rng rng(112u);
  auto kp = KemKeyGen(rng);
  Bytes ct = KemEncrypt(kp.pk, BytesView(ToBytes("do not touch")), rng);
  for (size_t i = Point::kEncodedSize; i < ct.size(); i++) {
    Bytes tampered = ct;
    tampered[i] ^= 0x01;
    EXPECT_FALSE(KemDecrypt(kp.sk, BytesView(tampered)).has_value())
        << "byte " << i;
  }
}

TEST(Kem, RejectsTruncated) {
  Rng rng(113u);
  auto kp = KemKeyGen(rng);
  Bytes tiny(kKemOverhead - 1, 0);
  EXPECT_FALSE(KemDecrypt(kp.sk, BytesView(tiny)).has_value());
}

TEST(Kem, ThresholdDecapMatchesDirect) {
  // Split the secret into additive weighted shares; combining partial
  // decapsulations must reproduce direct decryption.
  Rng rng(114u);
  auto kp = KemKeyGen(rng);
  Bytes msg = ToBytes("threshold");
  Bytes ct = KemEncrypt(kp.pk, BytesView(msg), rng);

  Scalar share1 = Scalar::Random(rng);
  Scalar share2 = kp.sk - share1;
  Point p1 = KemPartialDecap(share1, BytesView(ct));
  Point p2 = KemPartialDecap(share2, BytesView(ct));
  std::vector<Point> partials = {p1, p2};
  auto dec = KemCombineDecap(partials, BytesView(ct));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, msg);
}

}  // namespace
}  // namespace atom
