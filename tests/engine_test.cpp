// Tests for the dependency-scheduled RoundEngine (src/core/engine.h): the
// pipelined hop-graph executor must produce byte-identical sorted
// plaintexts to the old layer-barrier driver for every variant × topology
// combination, pipeline several rounds concurrently without mixing them
// up, and confine a mid-pipeline malicious action to the round it hits.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/round.h"
#include "src/crypto/elgamal.h"
#include "src/util/hex.h"
#include "src/util/rng.h"

namespace atom {
namespace {

// A permutation network fixture at the GroupRuntime level (no entry/exit
// phase bookkeeping): G groups, each a k-server anytrust chain.
struct Network {
  std::unique_ptr<Topology> topology;
  std::vector<std::unique_ptr<GroupRuntime>> groups;

  static Network Square(size_t width, size_t iterations, size_t k, Rng& rng) {
    Network net;
    net.topology = std::make_unique<SquareTopology>(width, iterations);
    net.MakeGroups(k, rng);
    return net;
  }

  static Network Butterfly(size_t log2_width, size_t passes, size_t k,
                           Rng& rng) {
    Network net;
    net.topology = std::make_unique<ButterflyTopology>(log2_width, passes);
    net.MakeGroups(k, rng);
    return net;
  }

  void MakeGroups(size_t k, Rng& rng) {
    for (uint32_t g = 0; g < topology->Width(); g++) {
      groups.push_back(
          std::make_unique<GroupRuntime>(g, RunDkg(DkgParams{k, k}, rng)));
    }
  }

  std::vector<const GroupRuntime*> GroupPtrs() const {
    std::vector<const GroupRuntime*> out;
    for (const auto& g : groups) {
      out.push_back(g.get());
    }
    return out;
  }

  // One single-component message per payload byte pair, encrypted to the
  // entry group.
  std::vector<CiphertextBatch> MakeEntry(size_t per_group, uint8_t tag,
                                         Rng& rng) {
    std::vector<CiphertextBatch> entry(topology->Width());
    for (uint32_t g = 0; g < topology->Width(); g++) {
      for (size_t i = 0; i < per_group; i++) {
        Bytes payload = {tag, static_cast<uint8_t>(g),
                         static_cast<uint8_t>(i)};
        entry[g].push_back({ElGamalEncrypt(
            groups[g]->pk(), *EmbedMessage(BytesView(payload)), rng)});
      }
    }
    return entry;
  }

  EngineRound Spec(std::vector<CiphertextBatch> entry, Variant variant,
                   Rng& rng) const {
    EngineRound spec;
    spec.topology = topology.get();
    spec.groups = GroupPtrs();
    spec.variant = variant;
    spec.entry = std::move(entry);
    rng.Fill(spec.seed.data(), spec.seed.size());
    return spec;
  }
};

// The old driver, verbatim: a global barrier between layers.
std::vector<CiphertextBatch> BarrierMix(const Network& net, Variant variant,
                                        std::vector<CiphertextBatch> at,
                                        Rng& rng) {
  const Topology& topo = *net.topology;
  const size_t T = topo.NumLayers();
  const size_t G = topo.Width();
  for (size_t layer = 0; layer < T; layer++) {
    const bool last = (layer + 1 == T);
    std::vector<CiphertextBatch> next(G);
    std::vector<CiphertextBatch> exits(G);
    for (uint32_t g = 0; g < G; g++) {
      if (at[g].empty()) {
        continue;
      }
      std::vector<Point> next_pks;
      std::vector<uint32_t> neighbors;
      if (!last) {
        neighbors = topo.Neighbors(layer, g);
        for (uint32_t n : neighbors) {
          next_pks.push_back(net.groups[n]->pk());
        }
      }
      HopResult hop = net.groups[g]->RunHop(at[g], next_pks, variant, rng);
      EXPECT_FALSE(hop.aborted) << hop.abort_reason;
      if (last) {
        exits[g] = std::move(hop.batches[0]);
      } else {
        for (size_t b = 0; b < neighbors.size(); b++) {
          for (auto& vec : hop.batches[b]) {
            next[neighbors[b]].push_back(std::move(vec));
          }
        }
      }
    }
    at = last ? std::move(exits) : std::move(next);
  }
  return at;
}

// Decrypts fully-stripped exit batches and returns the sorted hex
// plaintexts — the anonymity-set view both executors must agree on byte
// for byte.
std::vector<std::string> SortedPlaintexts(
    const std::vector<CiphertextBatch>& exits) {
  std::vector<std::string> out;
  for (const auto& batch : exits) {
    auto points = ExitPlaintexts(batch);
    EXPECT_TRUE(points.has_value());
    for (const auto& vec : *points) {
      for (const Point& p : vec) {
        auto bytes = ExtractMessage(p);
        EXPECT_TRUE(bytes.has_value());
        out.push_back(HexEncode(BytesView(*bytes)));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct EquivalenceCase {
  Variant variant;
  TopologyKind topology;
  const char* name;
};

class EngineEquivalence : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(EngineEquivalence, MatchesBarrierDriver) {
  const EquivalenceCase& c = GetParam();
  Rng rng(0xe9417e5u + static_cast<uint64_t>(c.variant) * 31 +
          static_cast<uint64_t>(c.topology));
  Network net = c.topology == TopologyKind::kSquare
                    ? Network::Square(3, 3, 2, rng)
                    : Network::Butterfly(1, 3, 2, rng);

  auto entry = net.MakeEntry(3, 0xa0, rng);
  auto entry_copy = entry;

  auto barrier = SortedPlaintexts(BarrierMix(net, c.variant, entry, rng));

  RoundEngine engine(&ThreadPool::Shared());
  auto result = engine.RunToCompletion(
      net.Spec(std::move(entry_copy), c.variant, rng));
  ASSERT_FALSE(result.aborted) << result.abort_reason;
  auto pipelined = SortedPlaintexts(result.exits);

  ASSERT_FALSE(barrier.empty());
  EXPECT_EQ(pipelined, barrier);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, EngineEquivalence,
    ::testing::Values(
        EquivalenceCase{Variant::kTrap, TopologyKind::kSquare, "TrapSquare"},
        EquivalenceCase{Variant::kNizk, TopologyKind::kSquare, "NizkSquare"},
        EquivalenceCase{Variant::kTrap, TopologyKind::kButterfly,
                        "TrapButterfly"},
        EquivalenceCase{Variant::kNizk, TopologyKind::kButterfly,
                        "NizkButterfly"}),
    [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
      return info.param.name;
    });

TEST(RoundEngine, HandlesEmptyAndUnbalancedEntryGroups) {
  Rng rng(0xbadbeefu);
  Network net = Network::Square(3, 3, 2, rng);
  auto entry = net.MakeEntry(2, 0xb0, rng);
  entry[1].clear();  // one silent entry group
  auto entry_copy = entry;

  auto barrier = SortedPlaintexts(BarrierMix(net, Variant::kTrap, entry, rng));
  RoundEngine engine(&ThreadPool::Shared());
  auto result = engine.RunToCompletion(
      net.Spec(std::move(entry_copy), Variant::kTrap, rng));
  ASSERT_FALSE(result.aborted);
  EXPECT_EQ(SortedPlaintexts(result.exits), barrier);
}

TEST(RoundEngine, PipelinesMultipleRoundsWithoutCrosstalk) {
  Rng rng(0x9191u);
  Network net = Network::Square(3, 3, 2, rng);

  constexpr size_t kRounds = 3;
  std::vector<std::vector<std::string>> want;
  std::vector<uint64_t> tickets;
  RoundEngine engine(&ThreadPool::Shared());
  for (size_t r = 0; r < kRounds; r++) {
    auto entry = net.MakeEntry(2, static_cast<uint8_t>(0xc0 + r), rng);
    auto entry_copy = entry;
    want.push_back(
        SortedPlaintexts(BarrierMix(net, Variant::kTrap, entry, rng)));
    tickets.push_back(engine.Submit(
        net.Spec(std::move(entry_copy), Variant::kTrap, rng)));
  }
  // All rounds are now in flight together; each must come back with
  // exactly its own plaintext set.
  for (size_t r = 0; r < kRounds; r++) {
    auto result = engine.Wait(tickets[r]);
    ASSERT_FALSE(result.aborted) << result.abort_reason;
    EXPECT_EQ(SortedPlaintexts(result.exits), want[r]) << "round " << r;
  }
}

TEST(RoundEngine, FaultMidPipelineAbortsOnlyTheAffectedRound) {
  Rng rng(0xfa017u);
  Network net = Network::Square(3, 3, 2, rng);

  RoundEngine engine(&ThreadPool::Shared());
  std::vector<uint64_t> tickets;
  for (size_t r = 0; r < 3; r++) {
    auto spec = net.Spec(net.MakeEntry(2, static_cast<uint8_t>(0xd0 + r), rng),
                         Variant::kNizk, rng);
    if (r == 1) {
      // Server 2 of group 0 tampers during the layer-1 shuffle; in the
      // NIZK variant the proof check catches it immediately.
      spec.faults.push_back(HopFault{
          1, 0, {MaliciousAction::Kind::kTamperDuringShuffle, 2, 0}});
    }
    tickets.push_back(engine.Submit(std::move(spec)));
  }

  auto r0 = engine.Wait(tickets[0]);
  auto r1 = engine.Wait(tickets[1]);
  auto r2 = engine.Wait(tickets[2]);

  EXPECT_TRUE(r1.aborted);
  EXPECT_NE(r1.abort_reason.find("group 0 layer 1"), std::string::npos)
      << r1.abort_reason;

  ASSERT_FALSE(r0.aborted) << r0.abort_reason;
  ASSERT_FALSE(r2.aborted) << r2.abort_reason;
  EXPECT_EQ(SortedPlaintexts(r0.exits).size(), 6u);
  EXPECT_EQ(SortedPlaintexts(r2.exits).size(), 6u);
}

TEST(RoundEngine, FirstFaultOnAHopWinsLikeTheOldDriver) {
  // The barrier driver scanned evils first-match; two faults pinned to the
  // same (layer, gid) must behave identically here.
  Rng rng(0x2fa017u);
  Network net = Network::Square(3, 3, 2, rng);
  auto spec = net.Spec(net.MakeEntry(2, 0xe0, rng), Variant::kNizk, rng);
  spec.faults.push_back(
      HopFault{1, 0, {MaliciousAction::Kind::kTamperDuringShuffle, 1, 0}});
  spec.faults.push_back(
      HopFault{1, 0, {MaliciousAction::Kind::kTamperDuringReEnc, 1, 0}});
  RoundEngine engine(&ThreadPool::Shared());
  auto result = engine.RunToCompletion(std::move(spec));
  EXPECT_TRUE(result.aborted);
  EXPECT_NE(result.abort_reason.find("shuffle"), std::string::npos)
      << result.abort_reason;
}

TEST(RoundEngine, RoundLevelPipelineBuildingBlocks) {
  // Round::MakeEngineRound + ExitPhase compose into exactly what
  // RunWithEvils does — the pieces a pipelined driver schedules itself.
  Rng rng(0x70707u);
  RoundConfig config;
  config.params.variant = Variant::kNizk;
  config.params.num_servers = 6;
  config.params.num_groups = 3;
  config.params.group_size = 2;
  config.params.honest_needed = 1;
  config.params.iterations = 3;
  config.params.message_len = 32;
  config.beacon = ToBytes("engine-test-beacon");
  Round round(config, rng);

  std::vector<CiphertextBatch> entry(round.NumGroups());
  std::set<std::string> sent;
  for (uint32_t u = 0; u < 6; u++) {
    uint32_t gid = u % round.NumGroups();
    Bytes msg = ToBytes("pipelined #" + std::to_string(u));
    sent.insert(HexEncode(BytesView(PadTo(BytesView(msg), 32))));
    auto sub = MakeNizkSubmission(round.EntryPk(gid), gid, BytesView(msg),
                                  round.layout(), rng);
    ASSERT_TRUE(round.SubmitNizk(sub));
    entry[gid].push_back(sub.ciphertext);
  }

  RoundEngine engine(&ThreadPool::Shared());
  auto mixed = engine.RunToCompletion(
      round.MakeEngineRound(std::move(entry), {}, rng));
  ASSERT_FALSE(mixed.aborted) << mixed.abort_reason;
  auto result = round.ExitPhase(std::move(mixed.exits));
  ASSERT_FALSE(result.aborted) << result.abort_reason;
  std::set<std::string> got;
  for (const auto& p : result.plaintexts) {
    got.insert(HexEncode(BytesView(p)));
  }
  EXPECT_EQ(got, sent);
}

}  // namespace
}  // namespace atom
