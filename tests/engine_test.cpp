// Tests for the dependency-scheduled RoundEngine (src/core/engine.h): the
// pipelined hop-graph executor must produce byte-identical sorted
// plaintexts to the old layer-barrier driver for every variant × topology
// combination, pipeline several rounds concurrently without mixing them
// up, and confine a mid-pipeline malicious action to the round it hits.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/round.h"
#include "src/crypto/elgamal.h"
#include "src/util/hex.h"
#include "src/util/rng.h"

namespace atom {
namespace {

// A permutation network fixture at the GroupRuntime level (no entry/exit
// phase bookkeeping): G groups, each a k-server anytrust chain.
struct Network {
  std::unique_ptr<Topology> topology;
  std::vector<std::unique_ptr<GroupRuntime>> groups;

  static Network Square(size_t width, size_t iterations, size_t k, Rng& rng) {
    Network net;
    net.topology = std::make_unique<SquareTopology>(width, iterations);
    net.MakeGroups(k, rng);
    return net;
  }

  static Network Butterfly(size_t log2_width, size_t passes, size_t k,
                           Rng& rng) {
    Network net;
    net.topology = std::make_unique<ButterflyTopology>(log2_width, passes);
    net.MakeGroups(k, rng);
    return net;
  }

  void MakeGroups(size_t k, Rng& rng) {
    for (uint32_t g = 0; g < topology->Width(); g++) {
      groups.push_back(
          std::make_unique<GroupRuntime>(g, RunDkg(DkgParams{k, k}, rng)));
    }
  }

  std::vector<const GroupRuntime*> GroupPtrs() const {
    std::vector<const GroupRuntime*> out;
    for (const auto& g : groups) {
      out.push_back(g.get());
    }
    return out;
  }

  // One single-component message per payload byte pair, encrypted to the
  // entry group.
  std::vector<CiphertextBatch> MakeEntry(size_t per_group, uint8_t tag,
                                         Rng& rng) {
    std::vector<CiphertextBatch> entry(topology->Width());
    for (uint32_t g = 0; g < topology->Width(); g++) {
      for (size_t i = 0; i < per_group; i++) {
        Bytes payload = {tag, static_cast<uint8_t>(g),
                         static_cast<uint8_t>(i)};
        entry[g].push_back({ElGamalEncrypt(
            groups[g]->pk(), *EmbedMessage(BytesView(payload)), rng)});
      }
    }
    return entry;
  }

  EngineRound Spec(std::vector<CiphertextBatch> entry, Variant variant,
                   Rng& rng) const {
    EngineRound spec;
    spec.topology = topology.get();
    spec.groups = GroupPtrs();
    spec.variant = variant;
    spec.entry = std::move(entry);
    rng.Fill(spec.seed.data(), spec.seed.size());
    return spec;
  }
};

// The old driver, verbatim: a global barrier between layers.
std::vector<CiphertextBatch> BarrierMix(const Network& net, Variant variant,
                                        std::vector<CiphertextBatch> at,
                                        Rng& rng) {
  const Topology& topo = *net.topology;
  const size_t T = topo.NumLayers();
  const size_t G = topo.Width();
  for (size_t layer = 0; layer < T; layer++) {
    const bool last = (layer + 1 == T);
    std::vector<CiphertextBatch> next(G);
    std::vector<CiphertextBatch> exits(G);
    for (uint32_t g = 0; g < G; g++) {
      if (at[g].empty()) {
        continue;
      }
      std::vector<Point> next_pks;
      std::vector<uint32_t> neighbors;
      if (!last) {
        neighbors = topo.Neighbors(layer, g);
        for (uint32_t n : neighbors) {
          next_pks.push_back(net.groups[n]->pk());
        }
      }
      HopResult hop = net.groups[g]->RunHop(at[g], next_pks, variant, rng);
      EXPECT_FALSE(hop.aborted) << hop.abort_reason;
      if (last) {
        exits[g] = std::move(hop.batches[0]);
      } else {
        for (size_t b = 0; b < neighbors.size(); b++) {
          for (auto& vec : hop.batches[b]) {
            next[neighbors[b]].push_back(std::move(vec));
          }
        }
      }
    }
    at = last ? std::move(exits) : std::move(next);
  }
  return at;
}

// Decrypts fully-stripped exit batches and returns the sorted hex
// plaintexts — the anonymity-set view both executors must agree on byte
// for byte.
std::vector<std::string> SortedPlaintexts(
    const std::vector<CiphertextBatch>& exits) {
  std::vector<std::string> out;
  for (const auto& batch : exits) {
    auto points = ExitPlaintexts(batch);
    EXPECT_TRUE(points.has_value());
    for (const auto& vec : *points) {
      for (const Point& p : vec) {
        auto bytes = ExtractMessage(p);
        EXPECT_TRUE(bytes.has_value());
        out.push_back(HexEncode(BytesView(*bytes)));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

struct EquivalenceCase {
  Variant variant;
  TopologyKind topology;
  const char* name;
};

class EngineEquivalence : public ::testing::TestWithParam<EquivalenceCase> {};

TEST_P(EngineEquivalence, MatchesBarrierDriver) {
  const EquivalenceCase& c = GetParam();
  Rng rng(0xe9417e5u + static_cast<uint64_t>(c.variant) * 31 +
          static_cast<uint64_t>(c.topology));
  Network net = c.topology == TopologyKind::kSquare
                    ? Network::Square(3, 3, 2, rng)
                    : Network::Butterfly(1, 3, 2, rng);

  auto entry = net.MakeEntry(3, 0xa0, rng);
  auto entry_copy = entry;

  auto barrier = SortedPlaintexts(BarrierMix(net, c.variant, entry, rng));

  RoundEngine engine(&ThreadPool::Shared());
  auto result = engine.RunToCompletion(
      net.Spec(std::move(entry_copy), c.variant, rng));
  ASSERT_FALSE(result.aborted) << result.abort_reason;
  auto pipelined = SortedPlaintexts(result.exits);

  ASSERT_FALSE(barrier.empty());
  EXPECT_EQ(pipelined, barrier);
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, EngineEquivalence,
    ::testing::Values(
        EquivalenceCase{Variant::kTrap, TopologyKind::kSquare, "TrapSquare"},
        EquivalenceCase{Variant::kNizk, TopologyKind::kSquare, "NizkSquare"},
        EquivalenceCase{Variant::kTrap, TopologyKind::kButterfly,
                        "TrapButterfly"},
        EquivalenceCase{Variant::kNizk, TopologyKind::kButterfly,
                        "NizkButterfly"}),
    [](const ::testing::TestParamInfo<EquivalenceCase>& info) {
      return info.param.name;
    });

TEST(RoundEngine, HandlesEmptyAndUnbalancedEntryGroups) {
  Rng rng(0xbadbeefu);
  Network net = Network::Square(3, 3, 2, rng);
  auto entry = net.MakeEntry(2, 0xb0, rng);
  entry[1].clear();  // one silent entry group
  auto entry_copy = entry;

  auto barrier = SortedPlaintexts(BarrierMix(net, Variant::kTrap, entry, rng));
  RoundEngine engine(&ThreadPool::Shared());
  auto result = engine.RunToCompletion(
      net.Spec(std::move(entry_copy), Variant::kTrap, rng));
  ASSERT_FALSE(result.aborted);
  EXPECT_EQ(SortedPlaintexts(result.exits), barrier);
}

TEST(RoundEngine, PipelinesMultipleRoundsWithoutCrosstalk) {
  Rng rng(0x9191u);
  Network net = Network::Square(3, 3, 2, rng);

  constexpr size_t kRounds = 3;
  std::vector<std::vector<std::string>> want;
  std::vector<uint64_t> tickets;
  RoundEngine engine(&ThreadPool::Shared());
  for (size_t r = 0; r < kRounds; r++) {
    auto entry = net.MakeEntry(2, static_cast<uint8_t>(0xc0 + r), rng);
    auto entry_copy = entry;
    want.push_back(
        SortedPlaintexts(BarrierMix(net, Variant::kTrap, entry, rng)));
    tickets.push_back(engine.Submit(
        net.Spec(std::move(entry_copy), Variant::kTrap, rng)));
  }
  // All rounds are now in flight together; each must come back with
  // exactly its own plaintext set.
  for (size_t r = 0; r < kRounds; r++) {
    auto result = engine.Wait(tickets[r]);
    ASSERT_FALSE(result.aborted) << result.abort_reason;
    EXPECT_EQ(SortedPlaintexts(result.exits), want[r]) << "round " << r;
  }
}

TEST(RoundEngine, FaultMidPipelineAbortsOnlyTheAffectedRound) {
  Rng rng(0xfa017u);
  Network net = Network::Square(3, 3, 2, rng);

  RoundEngine engine(&ThreadPool::Shared());
  std::vector<uint64_t> tickets;
  for (size_t r = 0; r < 3; r++) {
    auto spec = net.Spec(net.MakeEntry(2, static_cast<uint8_t>(0xd0 + r), rng),
                         Variant::kNizk, rng);
    if (r == 1) {
      // Server 2 of group 0 tampers during the layer-1 shuffle; in the
      // NIZK variant the proof check catches it immediately.
      spec.faults.push_back(HopFault{
          1, 0, {MaliciousAction::Kind::kTamperDuringShuffle, 2, 0}});
    }
    tickets.push_back(engine.Submit(std::move(spec)));
  }

  auto r0 = engine.Wait(tickets[0]);
  auto r1 = engine.Wait(tickets[1]);
  auto r2 = engine.Wait(tickets[2]);

  EXPECT_TRUE(r1.aborted);
  EXPECT_NE(r1.abort_reason.find("group 0 layer 1"), std::string::npos)
      << r1.abort_reason;

  ASSERT_FALSE(r0.aborted) << r0.abort_reason;
  ASSERT_FALSE(r2.aborted) << r2.abort_reason;
  EXPECT_EQ(SortedPlaintexts(r0.exits).size(), 6u);
  EXPECT_EQ(SortedPlaintexts(r2.exits).size(), 6u);
}

TEST(RoundEngine, FirstFaultOnAHopWinsLikeTheOldDriver) {
  // The barrier driver scanned evils first-match; two faults pinned to the
  // same (layer, gid) must behave identically here.
  Rng rng(0x2fa017u);
  Network net = Network::Square(3, 3, 2, rng);
  auto spec = net.Spec(net.MakeEntry(2, 0xe0, rng), Variant::kNizk, rng);
  spec.faults.push_back(
      HopFault{1, 0, {MaliciousAction::Kind::kTamperDuringShuffle, 1, 0}});
  spec.faults.push_back(
      HopFault{1, 0, {MaliciousAction::Kind::kTamperDuringReEnc, 1, 0}});
  RoundEngine engine(&ThreadPool::Shared());
  auto result = engine.RunToCompletion(std::move(spec));
  EXPECT_TRUE(result.aborted);
  EXPECT_NE(result.abort_reason.find("shuffle"), std::string::npos)
      << result.abort_reason;
}

// ---- Exit-phase equivalence: engine-native vs legacy ExitPhase --------
//
// Two Rounds built from identically seeded Rngs have identical keys, and
// identically seeded submission streams produce byte-identical ciphertexts;
// pinning the same engine seed on both specs then makes the mixing output
// byte-identical too. The legacy path (mixing-only spec + synchronous
// ExitPhase) and the engine-native path (TakeEngineRound, exit runs as hop
// tasks) must agree on the entire RoundResult: plaintexts in order, trap
// accounting, abort flag, abort reason.

RoundConfig ExitConfig(Variant variant) {
  RoundConfig config;
  config.params.variant = variant;
  config.params.num_servers = 6;
  config.params.num_groups = 3;
  config.params.group_size = 2;
  config.params.honest_needed = 1;
  config.params.iterations = 3;
  config.params.message_len = 32;
  config.beacon = ToBytes("exit-equivalence-beacon");
  return config;
}

// Submits kUsers submissions to `round` (deterministic given rng state) and
// mirrors them into an entry-batch vector in shard acceptance order. A
// cheating user flips their trap commitment so the exit check must fail.
std::vector<CiphertextBatch> SubmitDeterministicUsers(Round& round,
                                                      Variant variant,
                                                      bool cheating_user,
                                                      Rng& rng) {
  constexpr uint32_t kUsers = 6;
  std::vector<CiphertextBatch> entry(round.NumGroups());
  for (uint32_t u = 0; u < kUsers; u++) {
    uint32_t gid = u % round.NumGroups();
    Bytes msg = ToBytes("exit-eq #" + std::to_string(u));
    if (variant == Variant::kTrap) {
      auto sub = MakeTrapSubmission(round.EntryPk(gid), gid,
                                    round.TrusteePk(), BytesView(msg),
                                    round.layout(), rng);
      if (cheating_user && u == 0) {
        sub.trap_commitment[0] ^= 0xff;  // commitment matches nothing
      }
      EXPECT_TRUE(round.SubmitTrap(sub));
      entry[gid].push_back(sub.first);
      entry[gid].push_back(sub.second);
    } else {
      auto sub = MakeNizkSubmission(round.EntryPk(gid), gid, BytesView(msg),
                                    round.layout(), rng);
      EXPECT_TRUE(round.SubmitNizk(sub));
      entry[gid].push_back(sub.ciphertext);
    }
  }
  return entry;
}

struct ExitEquivalenceCase {
  Variant variant;
  bool server_evil;    // one malicious server mid-network
  bool cheating_user;  // one bogus trap commitment (trap variant only)
  const char* name;
};

class ExitEquivalence
    : public ::testing::TestWithParam<ExitEquivalenceCase> {};

TEST_P(ExitEquivalence, EngineNativeExitMatchesLegacyExitPhase) {
  const ExitEquivalenceCase& c = GetParam();
  const uint64_t round_seed = 0x5eedc0de;

  std::vector<Round::Evil> evils;
  if (c.server_evil) {
    if (c.variant == Variant::kNizk) {
      evils.push_back(Round::Evil{
          1, 0, {MaliciousAction::Kind::kTamperDuringShuffle, 2, 0}});
    } else {
      evils.push_back(Round::Evil{
          0, 1, {MaliciousAction::Kind::kDuplicateDuringShuffle, 1, 1}});
    }
  }
  std::array<uint8_t, 32> engine_seed;
  Rng(0x91c0ffee).Fill(engine_seed.data(), engine_seed.size());

  // Legacy: mixing-only spec, exit phase synchronous on this thread.
  Rng rng_a(round_seed);
  Round round_a(ExitConfig(c.variant), rng_a);
  auto entry_a =
      SubmitDeterministicUsers(round_a, c.variant, c.cheating_user, rng_a);
  RoundEngine engine(&ThreadPool::Shared());
  auto spec_a = round_a.MakeEngineRound(std::move(entry_a), evils, rng_a);
  spec_a.seed = engine_seed;
  auto mixed = engine.RunToCompletion(std::move(spec_a));
  RoundResult legacy;
  if (mixed.aborted) {
    legacy.aborted = true;
    legacy.abort_reason = std::move(mixed.abort_reason);
    round_a.AbandonIntakeEpoch();  // the legacy driver's abort contract
  } else {
    legacy = round_a.ExitPhase(std::move(mixed.exits));
  }

  // Engine-native: identical Round (same seeds), exit runs as hop tasks.
  Rng rng_b(round_seed);
  Round round_b(ExitConfig(c.variant), rng_b);
  SubmitDeterministicUsers(round_b, c.variant, c.cheating_user, rng_b);
  auto spec_b = round_b.TakeEngineRound(evils, rng_b);
  spec_b.seed = engine_seed;
  RoundResult native = engine.RunToCompletion(std::move(spec_b)).round;

  EXPECT_EQ(native.aborted, legacy.aborted);
  EXPECT_EQ(native.abort_reason, legacy.abort_reason);
  EXPECT_EQ(native.traps_seen, legacy.traps_seen);
  EXPECT_EQ(native.inner_seen, legacy.inner_seen);
  ASSERT_EQ(native.plaintexts.size(), legacy.plaintexts.size());
  // Same engine seed => byte-identical mixing => identical exit input, so
  // even the plaintext ORDER must match between the two executors.
  EXPECT_EQ(native.plaintexts, legacy.plaintexts);
  if (!c.server_evil && !c.cheating_user) {
    EXPECT_FALSE(native.aborted) << native.abort_reason;
    EXPECT_EQ(native.plaintexts.size(), 6u);
  } else {
    EXPECT_TRUE(native.aborted);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, ExitEquivalence,
    ::testing::Values(
        ExitEquivalenceCase{Variant::kTrap, false, false, "TrapHonest"},
        ExitEquivalenceCase{Variant::kNizk, false, false, "NizkHonest"},
        ExitEquivalenceCase{Variant::kTrap, true, false, "TrapEvilServer"},
        ExitEquivalenceCase{Variant::kNizk, true, false, "NizkEvilServer"},
        ExitEquivalenceCase{Variant::kTrap, false, true, "TrapCheatingUser"}),
    [](const ::testing::TestParamInfo<ExitEquivalenceCase>& info) {
      return info.param.name;
    });

// ---- Per-engine-round trap bookkeeping isolation ----------------------

TEST(EngineNativeExit, TrapMismatchInOneRoundDoesNotCorruptTheNext) {
  // Each TakeEngineRound packages its own commitment set; a cheating user
  // in pipelined round i must abort round i alone, and rounds i+1, i+2
  // (same Round, same key epoch, in flight concurrently) must complete
  // with exactly their own messages and trap accounting.
  Rng rng(0xab5e11u);
  Round round(ExitConfig(Variant::kTrap), rng);
  RoundEngine engine(&ThreadPool::Shared());

  auto submit_users = [&](uint32_t count, const std::string& tag,
                          bool cheat) {
    std::set<std::string> sent;
    for (uint32_t u = 0; u < count; u++) {
      uint32_t gid = u % round.NumGroups();
      Bytes msg = ToBytes(tag + std::to_string(u));
      sent.insert(HexEncode(BytesView(PadTo(BytesView(msg), 32))));
      auto sub = MakeTrapSubmission(round.EntryPk(gid), gid,
                                    round.TrusteePk(), BytesView(msg),
                                    round.layout(), rng);
      if (cheat && u == 0) {
        sub.trap_commitment[0] ^= 0xff;
      }
      EXPECT_TRUE(round.SubmitTrap(sub));
    }
    return sent;
  };

  submit_users(3, "poisoned ", /*cheat=*/true);
  auto spec1 = round.TakeEngineRound({}, rng);
  uint64_t epoch1 = spec1.intake_epoch;
  auto sent2 = submit_users(4, "clean-a ", false);
  auto spec2 = round.TakeEngineRound({}, rng);
  auto sent3 = submit_users(3, "clean-b ", false);
  auto spec3 = round.TakeEngineRound({}, rng);

  uint64_t t1 = engine.Submit(std::move(spec1));
  uint64_t t2 = engine.Submit(std::move(spec2));
  uint64_t t3 = engine.Submit(std::move(spec3));

  auto r1 = engine.Wait(t1).round;
  auto r2 = engine.Wait(t2).round;
  auto r3 = engine.Wait(t3).round;

  EXPECT_TRUE(r1.aborted);
  EXPECT_NE(r1.abort_reason.find("trustees refused"), std::string::npos)
      << r1.abort_reason;
  // §4.6 blame still reaches the aborted round's batch even though two
  // later epochs were taken: the cheater was user 0 of entry group 0
  // (the cheating submission is that group's first accepted one).
  auto blame = round.BlameEntryGroup(0, epoch1);
  ASSERT_EQ(blame.bad_users.size(), 1u);
  EXPECT_EQ(blame.bad_users[0], 0u);
  // The newest epoch (round 3, all honest) blames nobody.
  EXPECT_TRUE(round.BlameEntryGroup(0).bad_users.empty());

  auto hex_set = [](const std::vector<Bytes>& plaintexts) {
    std::set<std::string> out;
    for (const auto& p : plaintexts) {
      out.insert(HexEncode(BytesView(p)));
    }
    return out;
  };
  ASSERT_FALSE(r2.aborted) << r2.abort_reason;
  EXPECT_EQ(hex_set(r2.plaintexts), sent2);
  EXPECT_EQ(r2.traps_seen, 4u);
  EXPECT_EQ(r2.inner_seen, 4u);
  ASSERT_FALSE(r3.aborted) << r3.abort_reason;
  EXPECT_EQ(hex_set(r3.plaintexts), sent3);
  EXPECT_EQ(r3.traps_seen, 3u);
}

TEST(EngineNativeExit, OneKeyEpochServesAPipelineOfFullRounds) {
  // intake -> mix -> exit entirely inside the engine, several rounds in
  // flight at once, all under one Round's keys (§4.7 deployments re-key
  // far less often than they batch).
  Rng rng(0x1b1d5u);
  Round round(ExitConfig(Variant::kTrap), rng);
  RoundEngine engine(&ThreadPool::Shared());

  constexpr size_t kRounds = 3;
  std::vector<std::set<std::string>> sent(kRounds);
  std::vector<uint64_t> tickets;
  for (size_t r = 0; r < kRounds; r++) {
    for (uint32_t u = 0; u < 4; u++) {
      uint32_t gid = u % round.NumGroups();
      Bytes msg = ToBytes("epoch" + std::to_string(r) + " user" +
                          std::to_string(u));
      sent[r].insert(HexEncode(BytesView(PadTo(BytesView(msg), 32))));
      auto sub = MakeTrapSubmission(round.EntryPk(gid), gid,
                                    round.TrusteePk(), BytesView(msg),
                                    round.layout(), rng);
      ASSERT_TRUE(round.SubmitTrap(sub));
    }
    tickets.push_back(engine.Submit(round.TakeEngineRound({}, rng)));
  }
  for (size_t r = 0; r < kRounds; r++) {
    auto result = engine.Wait(tickets[r]).round;
    ASSERT_FALSE(result.aborted) << "round " << r << ": "
                                 << result.abort_reason;
    std::set<std::string> got;
    for (const auto& p : result.plaintexts) {
      got.insert(HexEncode(BytesView(p)));
    }
    EXPECT_EQ(got, sent[r]) << "round " << r;
    EXPECT_EQ(result.traps_seen, 4u) << "round " << r;
    EXPECT_EQ(result.inner_seen, 4u) << "round " << r;
  }
}

TEST(RoundEngine, AbandonedEpochDoesNotPoisonTheNextLegacyRound) {
  // Legacy MakeEngineRound + ExitPhase drivers: when mixing aborts,
  // ExitPhase never runs, so the driver abandons the epoch. Without the
  // abandon, the aborted batch's trap commitments would merge into the
  // next round's check and spuriously abort an all-honest round.
  Rng rng(0xaba4d04u);
  Round round(ExitConfig(Variant::kTrap), rng);
  RoundEngine engine(&ThreadPool::Shared());

  auto submit_batch = [&](const std::string& tag) {
    std::vector<CiphertextBatch> entry(round.NumGroups());
    for (uint32_t u = 0; u < 4; u++) {
      uint32_t gid = u % round.NumGroups();
      auto sub = MakeTrapSubmission(round.EntryPk(gid), gid,
                                    round.TrusteePk(),
                                    BytesView(ToBytes(tag)), round.layout(),
                                    rng);
      EXPECT_TRUE(round.SubmitTrap(sub));
      entry[gid].push_back(sub.first);
      entry[gid].push_back(sub.second);
    }
    return entry;
  };

  // Round 1: group 1 drops below threshold, so its first hop aborts the
  // mix. The driver abandons the epoch and repairs the group.
  auto entry1 = submit_batch("doomed");
  round.group(1).MarkFailed(1);
  auto mixed1 =
      engine.RunToCompletion(round.MakeEngineRound(std::move(entry1), {},
                                                   rng));
  EXPECT_TRUE(mixed1.aborted);
  round.AbandonIntakeEpoch();
  round.group(1).Restore(round.group(1).dkg().keys[0]);

  // Round 2: all honest; must pass the trap check with only its own
  // commitments.
  auto entry2 = submit_batch("fresh");
  auto mixed2 =
      engine.RunToCompletion(round.MakeEngineRound(std::move(entry2), {},
                                                   rng));
  ASSERT_FALSE(mixed2.aborted) << mixed2.abort_reason;
  auto result = round.ExitPhase(std::move(mixed2.exits));
  ASSERT_FALSE(result.aborted) << result.abort_reason;
  EXPECT_EQ(result.plaintexts.size(), 4u);
  EXPECT_EQ(result.traps_seen, 4u);
}

TEST(RoundEngine, RoundLevelPipelineBuildingBlocks) {
  // Round::MakeEngineRound + ExitPhase compose into exactly what
  // RunWithEvils does — the pieces a pipelined driver schedules itself.
  Rng rng(0x70707u);
  RoundConfig config;
  config.params.variant = Variant::kNizk;
  config.params.num_servers = 6;
  config.params.num_groups = 3;
  config.params.group_size = 2;
  config.params.honest_needed = 1;
  config.params.iterations = 3;
  config.params.message_len = 32;
  config.beacon = ToBytes("engine-test-beacon");
  Round round(config, rng);

  std::vector<CiphertextBatch> entry(round.NumGroups());
  std::set<std::string> sent;
  for (uint32_t u = 0; u < 6; u++) {
    uint32_t gid = u % round.NumGroups();
    Bytes msg = ToBytes("pipelined #" + std::to_string(u));
    sent.insert(HexEncode(BytesView(PadTo(BytesView(msg), 32))));
    auto sub = MakeNizkSubmission(round.EntryPk(gid), gid, BytesView(msg),
                                  round.layout(), rng);
    ASSERT_TRUE(round.SubmitNizk(sub));
    entry[gid].push_back(sub.ciphertext);
  }

  RoundEngine engine(&ThreadPool::Shared());
  auto mixed = engine.RunToCompletion(
      round.MakeEngineRound(std::move(entry), {}, rng));
  ASSERT_FALSE(mixed.aborted) << mixed.abort_reason;
  auto result = round.ExitPhase(std::move(mixed.exits));
  ASSERT_FALSE(result.aborted) << result.abort_reason;
  std::set<std::string> got;
  for (const auto& p : result.plaintexts) {
    got.insert(HexEncode(BytesView(p)));
  }
  EXPECT_EQ(got, sent);
}

}  // namespace
}  // namespace atom
