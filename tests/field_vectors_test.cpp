// Cross-implementation validation of the Montgomery field arithmetic:
// random (a, b) pairs with a·b, a+b, and a⁻¹ computed independently by
// CPython's arbitrary-precision integers, for both P-256 moduli.
#include <gtest/gtest.h>

#include <string_view>

#include "src/crypto/mont.h"
#include "src/util/hex.h"

namespace atom {
namespace {

struct FieldVector {
  std::string_view field;  // "P" (coordinate field) or "N" (scalar field)
  std::string_view a, b, prod, sum, a_inv;
};

// Generated with python3 (seed 1234); see the commit that added this file.
const FieldVector kVectors[] = {
    {"P", "f149f542e935b87017346b4501eaf6141de9ea6670d3da1fc735df5ef7697fba",
     "19322fed157cf9c6b16e2d5cabeb959208f0ebd4950cddd9ce97b5bdf073eed2",
     "a7c1b470d7611a975255edbe0dd93ee8e3cfb38e43893d43cb0b40a55c288e43",
     "0a7c2530feb2b235c8a298a1add68ba626dad63a05e0b7f995cd951ce7dd6e8d",
     "2a14875c1d3d541c9dafa38f438451f99a36f9e35ecb142265023c66a66faf03"},
    {"P", "040e1e30c9ed0248fc9799a707e36d6004762a223c9f90c95ac96628c4381837",
     "175e99412607ad5f76ab14759da618fd7bf78a4d9f8f5ffba5f80a0a58994954",
     "a159f5525698e844170f6fef1059c23cc5dcabd684d2c4c7ecd25d2f770e241d",
     "1b6cb771eff4afa87342ae1ca589865d806db46fdc2ef0c500c170331cd1618b",
     "454c01a0e279e2313983ca5c7caa8aa4b584f8cf4aecffc499cc21280a793d3f"},
    {"P", "e16682717c9bbfae80ca17b703be0e66d868c2cf1d4a2b12b6a20bb02edf0744",
     "118dc10e774520d7e98d7c358a84c15caad14268108727563ff4bb8cf703ca00",
     "c3451d0d14ff58f62eee1c194f6d856aa9672ed6b0339e494fb91ba491d6aaed",
     "f2f4437ff3e0e0866a5793ec8e42cfc3833a05372dd15268f696c73d25e2d144",
     "61d19a7878e02e94d033fb64eb310098d3bf18bf5711f2e0cee4d845a0a14c55"},
    {"N", "d30aad4b45038e220bc4621b9439852083d9fca716c40a33acd51e6699f9823d",
     "443658625af0f3e0d9a54a0d7b25331f4d6bfd8fa506bfc51025dbe58e725d58",
     "b4bef11a766fffe3feed66e719606b799d4db26b43d15e356f549d418738921f",
     "174105ae9ff48201e569ac290f5eb840145eff8914b32b73c9412f892c08ba44",
     "b5a6d734c5510edcea048b8b111c9e9574dbfcabfd0f43d116c00f9ad51e522d"},
    {"N", "aa58695187b8a518e065e3eb74113cb033354fc7eefadf23a7cda6c23fc86ee7",
     "b5c36ec124ce01e15560eaba017ad051121213ca8212f7c6f1048aa604f0d0f3",
     "84e788e644f4843b9518fff058a224f6a09cac48b783812f71bdd092f0e47be4",
     "601bd813ac86a6f935c6cea5758c0d01886068e4c9f63865a51866a548561a89",
     "d2b5d725efc4176ac3136a108a6c7988cdbba52ae3eb7e15450d19088870aec8"},
    {"N", "7f1ff9fe966844aa138411eb0dde6d082ac7e1da6099d795a8486261790b2f7d",
     "58a295d4eff35b6106f1e77124ed49b137106d208ead31c81348486129fc1d9e",
     "2d8b876f82ece4161dc902888417772dc8f41949461d21b2285913e481c20605",
     "d7c28fd3865ba00b1a75f95c32cbb6b961d84efaef47095dbb90aac2a3074d1b",
     "f5cef0fd1b25ceb3a41afddc58a42ba6eb54b85c0d68d6c7b0dccaa225de4aed"},
};

U256 FromHexStr(std::string_view h) {
  auto bytes = HexDecode(h);
  EXPECT_TRUE(bytes.has_value() && bytes->size() == 32);
  return U256::FromBytesBe(BytesView(*bytes));
}

class FieldVectorTest : public ::testing::TestWithParam<FieldVector> {};

TEST_P(FieldVectorTest, MatchesPythonBigints) {
  const FieldVector& vec = GetParam();
  const Mont& field = (vec.field == "P") ? FieldP() : FieldN();
  U256 a = FromHexStr(vec.a);
  U256 b = FromHexStr(vec.b);

  U256 ma = field.ToMont(a);
  U256 mb = field.ToMont(b);
  EXPECT_EQ(field.FromMont(field.Mul(ma, mb)), FromHexStr(vec.prod));
  EXPECT_EQ(field.Add(a, b), FromHexStr(vec.sum));
  EXPECT_EQ(field.FromMont(field.Inv(ma)), FromHexStr(vec.a_inv));
  // And the inverse property closes the loop.
  EXPECT_EQ(field.Mul(ma, field.ToMont(FromHexStr(vec.a_inv))), field.one());
}

INSTANTIATE_TEST_SUITE_P(PythonVectors, FieldVectorTest,
                         ::testing::ValuesIn(kVectors));

}  // namespace
}  // namespace atom
