// Seeded fuzz sweep over the wire decoders that face untrusted bytes:
// protocol envelopes (DecodeEnvelope), driver control frames
// (kBeginRound and the client-facing kRoundOpen/kRoundCutoff notices),
// registry snapshots (DecodeRegistrySync), and signed client submissions
// (DecodeSubmit). Every decoder must treat arbitrary mutations of a
// valid frame — truncations, bit flips, inflated length prefixes, pure
// garbage — as a clean std::nullopt: no crash, no assertion, and no
// attacker-controlled allocation (the CI runs this under ASan, where an
// inflated-count allocation blows the rss limit instead of hiding).
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "src/core/directory.h"
#include "src/core/wire.h"
#include "src/net/control.h"
#include "src/net/gateway.h"
#include "src/net/registry.h"
#include "src/util/rng.h"
#include "tests/seed_echo.h"

namespace atom {
namespace {

using atom_test::SeedEcho;
using atom_test::TestSeed;

// One decoder under test: name for diagnostics, a pristine frame its
// decoder accepts, and the decode entry point reduced to "did it parse".
struct Target {
  std::string name;
  Bytes valid;
  std::function<bool(BytesView)> decode;
};

std::vector<Target> BuildTargets(Rng& rng) {
  std::vector<Target> targets;

  // Protocol envelope with a small but structurally rich NodeMsg.
  {
    Envelope env;
    env.to_server = 3;
    env.round_id = 7;
    env.msg.type = NodeMsg::Type::kHopBatch;
    env.msg.gid = 2;
    env.msg.chain_pos = 1;
    env.msg.prev_pos = 4;
    Scalar sk = Scalar::Random(rng);
    Point pk = Point::BaseMul(sk);
    std::vector<Point> msgs = {Point::Generator(), pk};
    env.msg.batch.push_back(ElGamalEncryptVec(pk, msgs, rng));
    env.msg.next_pks = {pk};
    targets.push_back({"envelope", EncodeEnvelope(env), [](BytesView b) {
                         return DecodeEnvelope(b).has_value();
                       }});

    // Coalesced kEnvelopeBundle frame carrying two envelopes (the second
    // a bucket-bearing exit message, so both body shapes are exercised).
    Envelope second;
    second.to_server = 3;
    second.round_id = 7;
    second.msg.type = NodeMsg::Type::kExitBuckets;
    second.msg.gid = 1;
    second.msg.exit_traps = {Bytes{1, 2, 3}};
    second.msg.exit_inner = {Bytes{4, 5}, Bytes{6}};
    targets.push_back({"envelope_bundle",
                       EncodeEnvelopeBundle({env, second}), [](BytesView b) {
                         return DecodeEnvelopeBundle(b).has_value();
                       }});
  }

  // kBeginRound without a spec (legacy chain round).
  {
    std::array<uint8_t, 32> root{};
    for (size_t i = 0; i < root.size(); i++) {
      root[i] = static_cast<uint8_t>(rng.NextU64());
    }
    targets.push_back({"begin_round",
                       EncodeBeginRound(11, 42, root, nullptr),
                       [](BytesView b) {
                         return DecodeBeginRound(b).has_value();
                       }});
  }

  // kBeginRound with a full engine spec (adjacency, hosts, commitments).
  {
    std::array<uint8_t, 32> root{};
    WireRoundSpec spec;
    spec.variant = 1;
    spec.layers = 2;
    spec.width = 2;
    spec.hop_workers = 2;
    spec.adjacency = {{{0, 1}, {0, 1}}};
    spec.hosts = {1, 2};
    spec.group_pks = {Point::Generator(), Point::Generator()};
    spec.native_exit = true;
    spec.plaintext_len = 64;
    spec.padded_len = 66;
    spec.num_points = 3;
    spec.commitments.resize(2);
    spec.commitments[0].push_back({});
    targets.push_back({"begin_round_spec",
                       EncodeBeginRound(12, 43, root, &spec),
                       [](BytesView b) {
                         return DecodeBeginRound(b).has_value();
                       }});
  }

  // kRoundOpen / kRoundCutoff share the round-notice body.
  targets.push_back({"round_notice", EncodeRoundNotice(99), [](BytesView b) {
                       return DecodeRoundNotice(b).has_value();
                     }});

  // Registry snapshot with a handful of records.
  {
    std::vector<ClientRecord> records;
    for (uint64_t id = 1; id <= 4; id++) {
      ClientRecord record;
      record.client_id = 1000 + id;
      record.pk = Point::BaseMul(Scalar::Random(rng));
      records.push_back(record);
    }
    targets.push_back({"registry_sync", EncodeRegistrySync(5, records),
                       [](BytesView b) {
                         return DecodeRegistrySync(b).has_value();
                       }});
  }

  // Signed kSubmit frame (seq + submission bytes + Schnorr signature).
  {
    Scalar sk = Scalar::Random(rng);
    Point pk = Point::BaseMul(sk);
    Bytes submission(96);
    for (size_t i = 0; i < submission.size(); i++) {
      submission[i] = static_cast<uint8_t>(rng.NextU64());
    }
    SchnorrSignature sig =
        SchnorrSign(sk, pk, BytesView(SubmissionSigMessage(
                                BytesView(submission))), rng);
    targets.push_back({"submit_signed",
                       EncodeSubmitSigned(17, BytesView(submission), sig),
                       [](BytesView b) {
                         return DecodeSubmit(b).has_value();
                       }});
  }

  // Gateway welcome (the richest client-facing frame).
  {
    GatewayWelcome welcome;
    welcome.credit = 32;
    welcome.variant = 1;
    welcome.plaintext_len = 64;
    welcome.padded_len = 66;
    welcome.num_points = 3;
    welcome.entry_pks = {Point::Generator(),
                         Point::BaseMul(Scalar::Random(rng))};
    welcome.trustee_pk = Point::Generator();
    welcome.open_round = 9;
    targets.push_back({"welcome", EncodeWelcome(welcome), [](BytesView b) {
                         return DecodeWelcome(b).has_value();
                       }});
  }

  return targets;
}

TEST(FuzzDecode, PristineFramesParse) {
  const uint64_t seed = TestSeed(0xf022d);
  SeedEcho echo(seed);
  Rng rng(seed);
  for (const Target& t : BuildTargets(rng)) {
    EXPECT_TRUE(t.decode(BytesView(t.valid))) << t.name;
    EXPECT_FALSE(t.decode(BytesView())) << t.name << " accepted empty";
  }
}

TEST(FuzzDecode, EveryTruncationIsRejectedOrParses) {
  // A strict prefix must never crash; for these frames it must also
  // never parse (every codec is length-delimited end to end).
  const uint64_t seed = TestSeed(0xf022e);
  SeedEcho echo(seed);
  Rng rng(seed);
  for (const Target& t : BuildTargets(rng)) {
    const size_t n = t.valid.size();
    // Exhaustive for small frames, strided for the big envelope/spec.
    const size_t step = n > 2048 ? 37 : 1;
    for (size_t len = 0; len < n; len += step) {
      Bytes prefix(t.valid.begin(), t.valid.begin() + len);
      EXPECT_FALSE(t.decode(BytesView(prefix)))
          << t.name << " accepted a " << len << "/" << n << " prefix";
    }
  }
}

TEST(FuzzDecode, BitFlipSweepNeverCrashes) {
  const uint64_t seed = TestSeed(0xf022f);
  SeedEcho echo(seed);
  Rng rng(seed);
  for (const Target& t : BuildTargets(rng)) {
    for (int iter = 0; iter < 400; iter++) {
      Bytes mutated = t.valid;
      // 1-4 independent bit flips.
      const int flips = 1 + static_cast<int>(rng.NextU64() % 4);
      for (int f = 0; f < flips; f++) {
        const size_t pos = rng.NextU64() % mutated.size();
        mutated[pos] ^= static_cast<uint8_t>(1u << (rng.NextU64() % 8));
      }
      t.decode(BytesView(mutated));  // must not crash / trip sanitizers
    }
  }
}

TEST(FuzzDecode, InflatedLengthWordsAreRejectedWithoutBlowup) {
  // Overwrite every aligned 4-byte word with 0xFFFFFFFF — whichever of
  // them is a count or length prefix now claims ~4 billion elements.
  // The decoders cap counts against the remaining bytes BEFORE
  // allocating, so each call must return (almost always nullopt, never
  // an OOM) — under ASan an eager reserve() would abort the test.
  const uint64_t seed = TestSeed(0xf0230);
  SeedEcho echo(seed);
  Rng rng(seed);
  for (const Target& t : BuildTargets(rng)) {
    for (size_t off = 0; off + 4 <= t.valid.size(); off += 4) {
      Bytes mutated = t.valid;
      std::memset(mutated.data() + off, 0xFF, 4);
      t.decode(BytesView(mutated));
    }
    // And the classic: a plausible header followed by nothing. (Skip
    // frames of <= 16 bytes — the "header" would be the whole frame,
    // and e.g. an all-0xFF round id still decodes legitimately.)
    if (t.valid.size() > 16) {
      Bytes header(t.valid.begin(), t.valid.begin() + 16);
      for (size_t off = 0; off + 4 <= header.size(); off += 4) {
        Bytes mutated = header;
        std::memset(mutated.data() + off, 0xFF, 4);
        EXPECT_FALSE(t.decode(BytesView(mutated))) << t.name << " @" << off;
      }
    }
  }
}

TEST(FuzzDecode, RandomGarbageIsRejected) {
  const uint64_t seed = TestSeed(0xf0231);
  SeedEcho echo(seed);
  Rng rng(seed);
  std::vector<Target> targets = BuildTargets(rng);
  for (int iter = 0; iter < 300; iter++) {
    Bytes garbage(1 + rng.NextU64() % 512);
    for (size_t i = 0; i < garbage.size(); i++) {
      garbage[i] = static_cast<uint8_t>(rng.NextU64());
    }
    for (const Target& t : targets) {
      // Random bytes decoding as a valid point/signature chain is
      // cryptographically negligible; treat any accept as a bug.
      EXPECT_FALSE(t.decode(BytesView(garbage)))
          << t.name << " accepted garbage (iter " << iter << ")";
    }
  }
}

TEST(FuzzDecode, RegistrySyncCountCapHolds) {
  // Craft a sync frame whose count field claims kMaxRegistrySyncRecords
  // + 1 records with a one-record body: must reject before allocating.
  const uint64_t seed = TestSeed(0xf0232);
  SeedEcho echo(seed);
  Rng rng(seed);
  ClientRecord record;
  record.client_id = 1;
  record.pk = Point::BaseMul(Scalar::Random(rng));
  Bytes frame = EncodeRegistrySync(1, std::vector<ClientRecord>{record});
  // Layout: u64 seq || u32 count (little-endian) || records.
  const uint32_t huge = kMaxRegistrySyncRecords + 1;
  for (int i = 0; i < 4; i++) {
    frame[8 + i] = static_cast<uint8_t>(huge >> (8 * i));
  }
  EXPECT_FALSE(DecodeRegistrySync(BytesView(frame)).has_value());
}

TEST(FuzzDecode, EnvelopeBundleCountCapHolds) {
  // A bundle whose leading count claims ~1 billion envelopes over a
  // one-envelope body must be rejected before any reserve: the decoder
  // caps the count against remaining()/4 (each entry costs at least a
  // 4-byte length prefix).
  const uint64_t seed = TestSeed(0xf0233);
  SeedEcho echo(seed);
  Rng rng(seed);
  Envelope env;
  env.to_server = 1;
  env.round_id = 2;
  env.msg.type = NodeMsg::Type::kAbort;
  env.msg.gid = 0;
  env.msg.abort_reason = "x";
  Bytes frame = EncodeEnvelopeBundle({env});
  // Layout: u32 count (little-endian) || length-prefixed envelopes.
  const uint32_t huge = 1u << 30;
  for (int i = 0; i < 4; i++) {
    frame[i] = static_cast<uint8_t>(huge >> (8 * i));
  }
  EXPECT_FALSE(DecodeEnvelopeBundle(BytesView(frame)).has_value());

  // An empty bundle is malformed too: coalescing never ships zero
  // envelopes, so a zero count is an attacker frame, not a no-op.
  Bytes empty(4, 0);
  EXPECT_FALSE(DecodeEnvelopeBundle(BytesView(empty)).has_value());

  // Trailing garbage after the declared envelopes must reject (decode
  // requires full consumption, like every other frame body).
  Bytes padded = EncodeEnvelopeBundle({env});
  padded.push_back(0);
  EXPECT_FALSE(DecodeEnvelopeBundle(BytesView(padded)).has_value());
}

}  // namespace
}  // namespace atom
