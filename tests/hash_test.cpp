// Known-answer and behavioural tests for the hash / symmetric-crypto layer:
// SHA-256, SHA3-256, ChaCha20, Poly1305, ChaCha20-Poly1305 AEAD.
#include <gtest/gtest.h>

#include "src/crypto/aead.h"
#include "src/crypto/chacha20.h"
#include "src/crypto/keccak.h"
#include "src/crypto/poly1305.h"
#include "src/crypto/sha256.h"
#include "src/util/chacha_core.h"
#include "src/util/hex.h"

namespace atom {
namespace {

Bytes FromHex(std::string_view h) {
  auto out = HexDecode(h);
  EXPECT_TRUE(out.has_value());
  return *out;
}

std::string DigestHex(const std::array<uint8_t, 32>& d) {
  return HexEncode(BytesView(d.data(), d.size()));
}

TEST(Sha256, Abc) {
  auto d = Sha256::Hash(BytesView(ToBytes("abc")));
  EXPECT_EQ(DigestHex(d),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, Empty) {
  auto d = Sha256::Hash(BytesView());
  EXPECT_EQ(DigestHex(d),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, LongInput) {
  Bytes input(200, 'a');
  auto d = Sha256::Hash(BytesView(input));
  EXPECT_EQ(DigestHex(d),
            "c2a908d98f5df987ade41b5fce213067efbcc21ef2240212a41e54b5e7c28ae5");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Bytes input(300, 0);
  for (size_t i = 0; i < input.size(); i++) {
    input[i] = static_cast<uint8_t>(i);
  }
  auto oneshot = Sha256::Hash(BytesView(input));
  // Feed in awkward chunk sizes that straddle block boundaries.
  Sha256 ctx;
  size_t off = 0;
  for (size_t chunk : {1u, 63u, 64u, 65u, 100u, 7u}) {
    ctx.Update(BytesView(input.data() + off, chunk));
    off += chunk;
  }
  ctx.Update(BytesView(input.data() + off, input.size() - off));
  EXPECT_EQ(ctx.Finish(), oneshot);
}

TEST(Sha3, Empty) {
  auto d = Sha3_256(BytesView());
  EXPECT_EQ(DigestHex(d),
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a");
}

TEST(Sha3, Abc) {
  auto d = Sha3_256(BytesView(ToBytes("abc")));
  EXPECT_EQ(DigestHex(d),
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532");
}

TEST(Sha3, MultiBlock) {
  // 200 bytes spans more than one 136-byte rate block.
  Bytes input(200, 'a');
  auto d = Sha3_256(BytesView(input));
  EXPECT_EQ(DigestHex(d),
            "cce34485baf2bf2aca99b94833892a4f52896d3d153f7b840cc4f9fe695f1387");
}

TEST(ChaCha20, Rfc8439BlockVector) {
  // RFC 8439 §2.3.2.
  Bytes key = FromHex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  Bytes nonce = FromHex("000000090000004a00000000");
  uint8_t block[64];
  ChaCha20Block(key.data(), 1, nonce.data(), block);
  EXPECT_EQ(HexEncode(BytesView(block, 64)),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, XorIsInvolution) {
  Bytes key(32, 0x11), nonce(12, 0x22);
  Bytes data = ToBytes("some plaintext spanning more than one chacha block "
                       "so the counter increments at least once ............");
  Bytes orig = data;
  ChaCha20Xor(key.data(), nonce.data(), 7, data.data(), data.size());
  EXPECT_NE(data, orig);
  ChaCha20Xor(key.data(), nonce.data(), 7, data.data(), data.size());
  EXPECT_EQ(data, orig);
}

TEST(Poly1305, Rfc8439Vector) {
  // RFC 8439 §2.5.2.
  Bytes key = FromHex(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  Bytes msg = ToBytes("Cryptographic Forum Research Group");
  auto tag = Poly1305Tag(key.data(), BytesView(msg));
  EXPECT_EQ(HexEncode(BytesView(tag.data(), tag.size())),
            "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Aead, KnownAnswer) {
  // Generated with a reference ChaCha20-Poly1305 implementation.
  Bytes key(32), nonce(12);
  for (int i = 0; i < 32; i++) {
    key[static_cast<size_t>(i)] = static_cast<uint8_t>(i);
  }
  for (int i = 0; i < 12; i++) {
    nonce[static_cast<size_t>(i)] = static_cast<uint8_t>(100 + i);
  }
  Bytes aad = ToBytes("atom-aad");
  Bytes pt = ToBytes("The quick brown fox jumps over the lazy dog");
  Bytes sealed = AeadSeal(key.data(), nonce.data(), BytesView(aad),
                          BytesView(pt));
  EXPECT_EQ(HexEncode(BytesView(sealed)),
            "6079deeae9d01f3190fe770d9dfeb6b316a9ea14f52586ddb51f99c49f40ec87"
            "a2dc928cce403353fb80adaaf7ab61e75f2fbc46f71c9c0f950bdb");
}

TEST(Aead, RoundTrip) {
  Bytes key(32, 0xaa), nonce(12, 0xbb);
  Bytes aad = ToBytes("header");
  Bytes pt = ToBytes("secret message");
  Bytes sealed = AeadSeal(key.data(), nonce.data(), BytesView(aad),
                          BytesView(pt));
  auto opened = AeadOpen(key.data(), nonce.data(), BytesView(aad),
                         BytesView(sealed));
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, pt);
}

TEST(Aead, EmptyPlaintextRoundTrip) {
  Bytes key(32, 1), nonce(12, 2);
  Bytes sealed = AeadSeal(key.data(), nonce.data(), BytesView(), BytesView());
  EXPECT_EQ(sealed.size(), kAeadTagSize);
  auto opened = AeadOpen(key.data(), nonce.data(), BytesView(),
                         BytesView(sealed));
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST(Aead, DetectsCiphertextTampering) {
  Bytes key(32, 0xaa), nonce(12, 0xbb);
  Bytes pt = ToBytes("secret message");
  Bytes sealed = AeadSeal(key.data(), nonce.data(), BytesView(),
                          BytesView(pt));
  for (size_t i = 0; i < sealed.size(); i++) {
    Bytes tampered = sealed;
    tampered[i] ^= 1;
    EXPECT_FALSE(AeadOpen(key.data(), nonce.data(), BytesView(),
                          BytesView(tampered))
                     .has_value())
        << "tampering at byte " << i << " was not detected";
  }
}

TEST(Aead, DetectsAadMismatch) {
  Bytes key(32, 0xaa), nonce(12, 0xbb);
  Bytes aad = ToBytes("right"), wrong = ToBytes("wrong");
  Bytes pt = ToBytes("msg");
  Bytes sealed = AeadSeal(key.data(), nonce.data(), BytesView(aad),
                          BytesView(pt));
  EXPECT_FALSE(AeadOpen(key.data(), nonce.data(), BytesView(wrong),
                        BytesView(sealed))
                   .has_value());
}

TEST(Aead, DetectsWrongKey) {
  Bytes key(32, 0xaa), other(32, 0xab), nonce(12, 0xbb);
  Bytes pt = ToBytes("msg");
  Bytes sealed = AeadSeal(key.data(), nonce.data(), BytesView(),
                          BytesView(pt));
  EXPECT_FALSE(AeadOpen(other.data(), nonce.data(), BytesView(),
                        BytesView(sealed))
                   .has_value());
}

TEST(Aead, RejectsTruncatedInput) {
  Bytes key(32, 1), nonce(12, 2);
  Bytes short_input(kAeadTagSize - 1, 0);
  EXPECT_FALSE(AeadOpen(key.data(), nonce.data(), BytesView(),
                        BytesView(short_input))
                   .has_value());
}

}  // namespace
}  // namespace atom
