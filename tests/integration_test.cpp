// End-to-end application integration: microblogging and dialing running
// over the complete protocol stack, with the directory authority driving
// group formation — the closest thing to a deployment smoke test.
#include <gtest/gtest.h>

#include <set>

#include "src/apps/dialing.h"
#include "src/apps/microblog.h"
#include "src/core/directory.h"
#include "src/core/round.h"
#include "src/core/wire.h"
#include "src/util/rng.h"

namespace atom {
namespace {

TEST(Integration, MicroblogOverTwoDirectoryDrivenRounds) {
  Rng rng(5000u);

  // Servers register with the directory; rounds use its beacon chain.
  Directory directory(ToBytes("integration-genesis"));
  for (uint32_t i = 0; i < 6; i++) {
    auto identity = SchnorrKeyGen(rng);
    ASSERT_TRUE(directory.Register(
        MakeServerRegistration(i, i % 2, identity, rng)));
  }

  BulletinBoard board;
  for (uint64_t round_id = 1; round_id <= 2; round_id++) {
    RoundConfig config;
    config.params.variant = Variant::kTrap;
    config.params.num_servers = directory.NumServers();
    config.params.num_groups = 4;
    config.params.group_size = 3;
    config.params.iterations = 2;
    config.params.message_len = 80;
    config.beacon = directory.BeaconFor(round_id);
    Round round(config, rng);

    for (int u = 0; u < 4; u++) {
      uint32_t gid = static_cast<uint32_t>(u) % round.NumGroups();
      Bytes msg = ToBytes("r" + std::to_string(round_id) + " post " +
                          std::to_string(u));
      // Through the wire format, as a real client upload would be.
      auto sub = MakeTrapSubmission(round.EntryPk(gid), gid,
                                    round.TrusteePk(), BytesView(msg),
                                    round.layout(), rng);
      auto decoded = DecodeTrapSubmission(
          BytesView(EncodeTrapSubmission(sub)));
      ASSERT_TRUE(decoded.has_value());
      ASSERT_TRUE(round.SubmitTrap(*decoded));
    }
    auto result = round.Run(rng);
    ASSERT_FALSE(result.aborted) << result.abort_reason;
    board.PostRound(round_id, result.plaintexts);
  }

  EXPECT_EQ(board.posts().size(), 8u);
  EXPECT_EQ(board.RenderRound(1).size(), 4u);
  EXPECT_EQ(board.RenderRound(2).size(), 4u);
  // Every post from round 1 carries the round-1 prefix.
  for (const auto& text : board.RenderRound(1)) {
    EXPECT_EQ(text.substr(0, 2), "r1");
  }
}

TEST(Integration, DialingEndToEndWithMailboxes) {
  Rng rng(5001u);
  auto bob = KemKeyGen(rng);
  auto carol = KemKeyGen(rng);
  constexpr uint64_t kBobId = 1001, kCarolId = 2002;

  RoundConfig config;
  config.params.variant = Variant::kTrap;
  config.params.num_servers = 6;
  config.params.num_groups = 4;
  config.params.group_size = 3;
  config.params.iterations = 2;
  config.params.message_len = kDialMessageLen;
  config.beacon = ToBytes("dial-integration");
  Round round(config, rng);

  Bytes to_bob = rng.NextBytes(kDialPayloadLen);
  Bytes to_carol = rng.NextBytes(kDialPayloadLen);
  std::vector<Bytes> dials = {
      MakeDialRequest(kBobId, bob.pk, BytesView(to_bob), rng),
      MakeDialRequest(kCarolId, carol.pk, BytesView(to_carol), rng),
  };
  auto dummies = MakeDummyDials(4, 1 << 16, rng);
  dials.insert(dials.end(), dummies.begin(), dummies.end());

  for (size_t i = 0; i < dials.size(); i++) {
    uint32_t gid = static_cast<uint32_t>(i) % round.NumGroups();
    auto sub = MakeTrapSubmission(round.EntryPk(gid), gid, round.TrusteePk(),
                                  BytesView(dials[i]), round.layout(), rng);
    ASSERT_TRUE(round.SubmitTrap(sub));
  }
  auto result = round.Run(rng);
  ASSERT_FALSE(result.aborted) << result.abort_reason;
  ASSERT_EQ(result.plaintexts.size(), dials.size());

  MailboxSystem boxes(32);
  EXPECT_EQ(boxes.Deliver(result.plaintexts), 0u);

  // Bob finds exactly his dial by trial decryption of his mailbox.
  int bob_found = 0;
  for (const Bytes& entry : boxes.mailbox(boxes.MailboxOf(kBobId))) {
    auto opened = OpenDialRequest(kBobId, bob.sk, BytesView(entry));
    if (opened.has_value() && *opened == to_bob) {
      bob_found++;
    }
  }
  EXPECT_EQ(bob_found, 1);

  int carol_found = 0;
  for (const Bytes& entry : boxes.mailbox(boxes.MailboxOf(kCarolId))) {
    auto opened = OpenDialRequest(kCarolId, carol.sk, BytesView(entry));
    if (opened.has_value() && *opened == to_carol) {
      carol_found++;
    }
  }
  EXPECT_EQ(carol_found, 1);
}

TEST(Integration, OutputOrderIsAPermutationUnrelatedToSubmission) {
  // Anonymity smoke test: run the same set of users twice with different
  // beacons; the exit order must differ (the permutation is fresh) while
  // the message multiset is identical.
  auto run_once = [](uint64_t seed, const std::string& beacon) {
    Rng rng(seed);
    RoundConfig config;
    config.params.variant = Variant::kTrap;
    config.params.num_servers = 6;
    config.params.num_groups = 4;
    config.params.group_size = 3;
    config.params.iterations = 2;
    config.params.message_len = 32;
    config.beacon = ToBytes(beacon);
    Round round(config, rng);
    for (int u = 0; u < 8; u++) {
      uint32_t gid = static_cast<uint32_t>(u) % round.NumGroups();
      auto sub = MakeTrapSubmission(round.EntryPk(gid), gid,
                                    round.TrusteePk(),
                                    BytesView(ToBytes("m" +
                                                      std::to_string(u))),
                                    round.layout(), rng);
      EXPECT_TRUE(round.SubmitTrap(sub));
    }
    auto result = round.Run(rng);
    EXPECT_FALSE(result.aborted);
    return result.plaintexts;
  };

  auto a = run_once(1, "beacon-a");
  auto b = run_once(2, "beacon-b");
  ASSERT_EQ(a.size(), b.size());
  EXPECT_NE(a, b);  // different order (overwhelmingly)
  std::multiset<Bytes> ma(a.begin(), a.end()), mb(b.begin(), b.end());
  EXPECT_EQ(ma, mb);  // same messages
}

TEST(Integration, ExitPositionOfTrackedMessageIsNearUniform) {
  // The anonymity definition (§2.2): the final permutation must be
  // indistinguishable from random. Track one known message over many
  // independent rounds and check its exit position spreads over all slots
  // (a degenerate mix would pin it).
  constexpr int kRounds = 24;
  constexpr int kUsers = 4;
  std::vector<int> position_count(kUsers, 0);
  for (int r = 0; r < kRounds; r++) {
    Rng rng(6100u + static_cast<uint64_t>(r));
    RoundConfig config;
    config.params.variant = Variant::kTrap;
    config.params.num_servers = 6;
    config.params.num_groups = 4;
    config.params.group_size = 3;
    config.params.iterations = 3;
    config.params.message_len = 32;
    config.beacon = ToBytes("uniformity-" + std::to_string(r));
    Round round(config, rng);
    for (int u = 0; u < kUsers; u++) {
      uint32_t gid = static_cast<uint32_t>(u) % round.NumGroups();
      Bytes msg = ToBytes(u == 0 ? "tracked" : "cover " + std::to_string(u));
      auto sub = MakeTrapSubmission(round.EntryPk(gid), gid,
                                    round.TrusteePk(), BytesView(msg),
                                    round.layout(), rng);
      ASSERT_TRUE(round.SubmitTrap(sub));
    }
    auto result = round.Run(rng);
    ASSERT_FALSE(result.aborted);
    ASSERT_EQ(result.plaintexts.size(), static_cast<size_t>(kUsers));
    for (int pos = 0; pos < kUsers; pos++) {
      if (BytesView(result.plaintexts[static_cast<size_t>(pos)])
              .subspan(0, 7).size() == 7 &&
          std::equal(result.plaintexts[static_cast<size_t>(pos)].begin(),
                     result.plaintexts[static_cast<size_t>(pos)].begin() + 7,
                     ToBytes("tracked").begin())) {
        position_count[static_cast<size_t>(pos)]++;
      }
    }
  }
  // Expected 6 per position over 24 rounds; demand every slot is reachable
  // and none dominates (loose 5-sigma-ish band).
  for (int pos = 0; pos < kUsers; pos++) {
    EXPECT_GE(position_count[static_cast<size_t>(pos)], 1)
        << "exit slot " << pos << " never reached";
    EXPECT_LE(position_count[static_cast<size_t>(pos)], 15)
        << "exit slot " << pos << " dominates";
  }
}

}  // namespace
}  // namespace atom
