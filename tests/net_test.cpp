// Tests for the TCP transport layer (src/net/): envelope wire round-trips
// across every message type, frame/handshake hardening, the SerialExecutor
// delivery discipline, and — the core properties — transport equivalence
// (the same seeded round driven through LocalBus and through a TcpPeerMesh
// of NodeProcess loopback servers produces byte-identical group outputs)
// and distributed-pipeline equivalence (overlapping engine rounds driven
// through the DistributedRoundDriver produce byte-identical RoundResults
// to the in-process RoundEngine), with faults (evil server mid-chain,
// killed peer, SIGKILLed process mid-pipeline) surfacing as round-scoped
// aborts rather than hangs.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <deque>
#include <memory>
#include <set>
#include <thread>

#include "src/core/node.h"
#include "src/core/round.h"
#include "src/core/wire.h"
#include "src/net/control.h"
#include "src/net/link.h"
#include "src/net/mesh.h"
#include "src/net/node_process.h"
#include "src/net/round_driver.h"
#include "src/util/hex.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace atom {
namespace {

using namespace std::chrono_literals;

CiphertextBatch MakeBatch(const Point& pk, size_t n, Rng& rng) {
  CiphertextBatch batch(n);
  for (size_t i = 0; i < n; i++) {
    Bytes payload = {static_cast<uint8_t>(i), 0x5a};
    batch[i].push_back(
        ElGamalEncrypt(pk, *EmbedMessage(BytesView(payload)), rng));
  }
  return batch;
}

Scalar GroupSecret(const DkgResult& dkg) {
  std::vector<Share> shares;
  for (const auto& key : dkg.keys) {
    shares.push_back(Share{key.index, key.share});
  }
  auto secret = ShamirReconstruct(shares, dkg.pub.params.threshold);
  EXPECT_TRUE(secret.has_value());
  return *secret;
}

std::multiset<std::string> DecryptBatch(const Scalar& secret,
                                        const CiphertextBatch& batch) {
  std::multiset<std::string> out;
  for (const auto& vec : batch) {
    for (const auto& ct : vec) {
      auto m = ElGamalDecrypt(secret, ct);
      EXPECT_TRUE(m.has_value());
      auto bytes = ExtractMessage(*m);
      EXPECT_TRUE(bytes.has_value());
      out.insert(HexEncode(BytesView(*bytes)));
    }
  }
  return out;
}

NodeMsg EntryMsg(uint32_t gid, CiphertextBatch batch,
                 std::vector<Point> next_pks) {
  NodeMsg msg;
  msg.type = NodeMsg::Type::kShuffleStep;
  msg.gid = gid;
  msg.chain_pos = 0;
  msg.batch = std::move(batch);
  msg.next_pks = std::move(next_pks);
  return msg;
}

bool WaitUntil(const std::function<bool()>& pred,
               std::chrono::milliseconds timeout = 5s) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) {
      return true;
    }
    std::this_thread::sleep_for(10ms);
  }
  return pred();
}

// ------------------------------------------------------------ wire format

TEST(EnvelopeWire, RoundTripAllMessageTypesWithProofs) {
  // Drive one full NIZK hop by hand and push every envelope through the
  // Envelope wire format; re-encoding the decoded message must be
  // byte-identical (the transport relies on lossless round-trips for the
  // LocalBus-equivalence guarantee).
  Rng rng(uint64_t{9100});
  DkgResult dkg = RunDkg(DkgParams{3, 3}, rng);
  std::vector<uint32_t> chain = {1, 2, 3};
  std::vector<std::unique_ptr<AtomNode>> nodes;
  for (uint32_t pos = 0; pos < 3; pos++) {
    nodes.push_back(std::make_unique<AtomNode>(pos + 1, Variant::kNizk));
    nodes.back()->JoinGroup(7, MakeNodeGroupKeys(dkg, chain, pos));
  }

  std::set<NodeMsg::Type> seen;
  bool saw_shuffle_proof = false, saw_reenc_proofs = false;
  std::deque<Envelope> queue;
  queue.push_back(
      Envelope{1, EntryMsg(7, MakeBatch(dkg.pub.group_pk, 3, rng), {})});
  while (!queue.empty()) {
    Envelope env = std::move(queue.front());
    queue.pop_front();

    Bytes enc = EncodeEnvelope(env);
    auto dec = DecodeEnvelope(BytesView(enc));
    ASSERT_TRUE(dec.has_value());
    EXPECT_EQ(dec->to_server, env.to_server);
    EXPECT_EQ(EncodeEnvelope(*dec), enc);

    seen.insert(dec->msg.type);
    saw_shuffle_proof |= dec->msg.shuffle_proof.has_value();
    saw_reenc_proofs |= !dec->msg.reenc_proofs.empty();
    if (dec->msg.type == NodeMsg::Type::kGroupOutput ||
        dec->msg.type == NodeMsg::Type::kAbort) {
      continue;
    }
    for (Envelope& next :
         nodes[dec->to_server - 1]->Handle(dec->msg, rng)) {
      queue.push_back(std::move(next));
    }
  }
  EXPECT_TRUE(seen.contains(NodeMsg::Type::kShuffleStep));
  EXPECT_TRUE(seen.contains(NodeMsg::Type::kReEncStep));
  EXPECT_TRUE(seen.contains(NodeMsg::Type::kGroupOutput));
  EXPECT_TRUE(saw_shuffle_proof);
  EXPECT_TRUE(saw_reenc_proofs);

  // kAbort round-trips too (not produced by an honest hop).
  NodeMsg abort_msg;
  abort_msg.type = NodeMsg::Type::kAbort;
  abort_msg.gid = 7;
  abort_msg.abort_reason = "proof rejected";
  Envelope abort_env{2, abort_msg};
  Bytes enc = EncodeEnvelope(abort_env);
  auto dec = DecodeEnvelope(BytesView(enc));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->msg.abort_reason, "proof rejected");
  EXPECT_EQ(EncodeEnvelope(*dec), enc);
}

TEST(EnvelopeWire, RejectsTruncationJunkAndTrailingBytes) {
  Rng rng(uint64_t{9200});
  DkgResult dkg = RunDkg(DkgParams{2, 2}, rng);
  Envelope env{5, EntryMsg(3, MakeBatch(dkg.pub.group_pk, 2, rng),
                           {dkg.pub.group_pk})};
  Bytes enc = EncodeEnvelope(env);
  ASSERT_TRUE(DecodeEnvelope(BytesView(enc)).has_value());
  // Every strict prefix fails.
  for (size_t len = 0; len < enc.size(); len++) {
    EXPECT_FALSE(DecodeEnvelope(BytesView(enc.data(), len)).has_value());
  }
  // Trailing garbage fails (a frame is exactly one envelope).
  Bytes padded = enc;
  padded.push_back(0x00);
  EXPECT_FALSE(DecodeEnvelope(BytesView(padded)).has_value());
  // Corrupt message type byte (offset 12, after to_server + round_id)
  // fails.
  Bytes bad = enc;
  bad[12] = 0x7f;
  EXPECT_FALSE(DecodeEnvelope(BytesView(bad)).has_value());
  // The round tag round-trips (overlapping rounds demux by it).
  Envelope tagged = env;
  tagged.round_id = 0x1122334455667788ULL;
  auto dec = DecodeEnvelope(BytesView(EncodeEnvelope(tagged)));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->round_id, tagged.round_id);
}

// --------------------------------------------------------- serial executor

TEST(SerialExecutorTest, RunsTasksInOrderWithoutOverlap) {
  SerialExecutor serial;
  std::vector<int> order;           // written only from serial tasks
  std::atomic<bool> in_task{false};
  for (int i = 0; i < 500; i++) {
    serial.Submit([&order, &in_task, i] {
      ASSERT_FALSE(in_task.exchange(true));  // never two tasks at once
      order.push_back(i);
      in_task.store(false);
    });
  }
  serial.Drain();
  ASSERT_EQ(order.size(), 500u);
  for (int i = 0; i < 500; i++) {
    EXPECT_EQ(order[i], i);
  }
}

// ----------------------------------------------------------- secure links

struct LinkPair {
  std::unique_ptr<SecureLink> dialer;
  std::unique_ptr<SecureLink> listener;
};

// Connects two SecureLinks over loopback; either side may be nullptr when
// the handshake is expected to fail.
LinkPair Connect(uint32_t dialer_id, const KemKeypair& dialer_key,
                 uint32_t listener_id, const KemKeypair& listener_key,
                 const Point& dialer_expects_pk,
                 const std::optional<Point>& listener_expects_pk) {
  auto tcp_listener = TcpListener::Bind(0);
  EXPECT_TRUE(tcp_listener.has_value());
  LinkPair pair;
  std::thread accept_thread([&] {
    auto socket = tcp_listener->Accept();
    if (!socket) {
      return;
    }
    Rng rng = Rng::FromOsEntropy();
    pair.listener = SecureLink::Accept(
        std::move(*socket), listener_id, listener_key,
        [&](uint32_t) { return listener_expects_pk; }, rng);
  });
  auto socket = TcpSocket::Dial("127.0.0.1", tcp_listener->port());
  EXPECT_TRUE(socket.has_value());
  Rng rng = Rng::FromOsEntropy();
  pair.dialer = SecureLink::Dial(std::move(*socket), dialer_id, dialer_key,
                                 listener_id, dialer_expects_pk, rng);
  accept_thread.join();
  return pair;
}

TEST(SecureLinkTest, RoundTripsRecordsBothWays) {
  Rng rng(uint64_t{9300});
  KemKeypair a = KemKeyGen(rng), b = KemKeyGen(rng);
  LinkPair pair = Connect(10, a, 20, b, b.pk, a.pk);
  ASSERT_NE(pair.dialer, nullptr);
  ASSERT_NE(pair.listener, nullptr);
  EXPECT_EQ(pair.dialer->peer_id(), 20u);
  EXPECT_EQ(pair.listener->peer_id(), 10u);

  for (int i = 0; i < 5; i++) {
    Bytes payload = rng.NextBytes(1000 + static_cast<size_t>(i) * 137);
    ASSERT_TRUE(pair.dialer->Send(BytesView(payload)));
    auto got = pair.listener->Recv();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);

    Bytes reply = rng.NextBytes(64);
    ASSERT_TRUE(pair.listener->Send(BytesView(reply)));
    auto got_reply = pair.dialer->Recv();
    ASSERT_TRUE(got_reply.has_value());
    EXPECT_EQ(*got_reply, reply);
  }
}

TEST(SecureLinkTest, HandshakeRejectsWrongListenerKey) {
  Rng rng(uint64_t{9400});
  KemKeypair a = KemKeyGen(rng), b = KemKeyGen(rng), other = KemKeyGen(rng);
  // Dialer encrypts its contribution to a key the listener does not hold:
  // the listener cannot decapsulate and must reject; the dialer never
  // completes either.
  LinkPair pair = Connect(10, a, 20, b, other.pk, a.pk);
  EXPECT_EQ(pair.dialer, nullptr);
  EXPECT_EQ(pair.listener, nullptr);
}

TEST(SecureLinkTest, HandshakeRejectsUnknownDialer) {
  Rng rng(uint64_t{9500});
  KemKeypair a = KemKeyGen(rng), b = KemKeyGen(rng);
  // Listener has no registered key for the dialer's id.
  LinkPair pair = Connect(10, a, 20, b, b.pk, std::nullopt);
  EXPECT_EQ(pair.listener, nullptr);
  EXPECT_EQ(pair.dialer, nullptr);
}

TEST(SecureLinkTest, AcceptRejectsOversizeHandshakeFrame) {
  Rng rng(uint64_t{9600});
  KemKeypair b = KemKeyGen(rng);
  auto tcp_listener = TcpListener::Bind(0);
  ASSERT_TRUE(tcp_listener.has_value());
  std::unique_ptr<SecureLink> accepted;
  std::thread accept_thread([&] {
    auto socket = tcp_listener->Accept();
    if (!socket) {
      return;
    }
    Rng accept_rng = Rng::FromOsEntropy();
    accepted = SecureLink::Accept(
        std::move(*socket), 20, b,
        [&](uint32_t) -> std::optional<Point> { return b.pk; }, accept_rng);
  });
  auto socket = TcpSocket::Dial("127.0.0.1", tcp_listener->port());
  ASSERT_TRUE(socket.has_value());
  // Declared length far past the handshake cap: must be rejected without
  // the listener attempting to allocate or read it.
  Bytes oversize = {0xff, 0xff, 0xff, 0x7f};
  ASSERT_TRUE(socket->SendAll(BytesView(oversize)));
  accept_thread.join();
  EXPECT_EQ(accepted, nullptr);
}

TEST(SecureLinkTest, AcceptRejectsTruncatedHandshakeFrame) {
  Rng rng(uint64_t{9700});
  KemKeypair b = KemKeyGen(rng);
  auto tcp_listener = TcpListener::Bind(0);
  ASSERT_TRUE(tcp_listener.has_value());
  std::unique_ptr<SecureLink> accepted;
  std::thread accept_thread([&] {
    auto socket = tcp_listener->Accept();
    if (!socket) {
      return;
    }
    Rng accept_rng = Rng::FromOsEntropy();
    accepted = SecureLink::Accept(
        std::move(*socket), 20, b,
        [&](uint32_t) -> std::optional<Point> { return b.pk; }, accept_rng);
  });
  {
    auto socket = TcpSocket::Dial("127.0.0.1", tcp_listener->port());
    ASSERT_TRUE(socket.has_value());
    // Declares 100 payload bytes, delivers 10, disconnects.
    Bytes partial = {100, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    ASSERT_TRUE(socket->SendAll(BytesView(partial)));
  }  // socket closes here
  accept_thread.join();
  EXPECT_EQ(accepted, nullptr);
}

TEST(SecureLinkTest, ReceiverRejectsTamperedRecord) {
  Rng rng(uint64_t{9800});
  KemKeypair a = KemKeyGen(rng), b = KemKeyGen(rng);
  LinkPair pair = Connect(10, a, 20, b, b.pk, a.pk);
  ASSERT_NE(pair.dialer, nullptr);
  ASSERT_NE(pair.listener, nullptr);
  // A frame that was never sealed with the session key must fail record
  // authentication and kill the link.
  Bytes forged = rng.NextBytes(64);
  ASSERT_TRUE(pair.dialer->SendRawFrameForTest(BytesView(forged)));
  EXPECT_FALSE(pair.listener->Recv().has_value());
  EXPECT_FALSE(pair.listener->alive());
}

TEST(FrameIo, ReadFrameEnforcesCallerCap) {
  auto tcp_listener = TcpListener::Bind(0);
  ASSERT_TRUE(tcp_listener.has_value());
  std::optional<Bytes> got;
  std::thread accept_thread([&] {
    auto socket = tcp_listener->Accept();
    if (!socket) {
      return;
    }
    got = ReadFrame(*socket, 16);  // cap below the sender's frame
  });
  auto socket = TcpSocket::Dial("127.0.0.1", tcp_listener->port());
  ASSERT_TRUE(socket.has_value());
  Bytes payload(64, 0xab);
  ASSERT_TRUE(WriteFrame(*socket, BytesView(payload)));
  accept_thread.join();
  EXPECT_FALSE(got.has_value());
}

// ------------------------------------------------- mesh deployment helper

struct MeshDeployment {
  Rng setup_rng{uint64_t{7100}};
  KemKeypair driver_key = KemKeyGen(setup_rng);
  TcpPeerMesh driver{TcpPeerMesh::Role::kDriver, kMeshDriverId, driver_key};
  std::vector<std::unique_ptr<NodeProcess>> procs;
  std::vector<MeshPeer> roster;
  struct Join {
    uint32_t server_id;
    uint32_t gid;
    NodeGroupKeys keys;
  };
  std::vector<Join> joins;

  MeshDeployment() {
    driver.set_run_timeout(60s);
    driver.set_control_timeout(20s);
  }

  ~MeshDeployment() { StopAll(); }

  DkgResult AddGroup(uint32_t gid, uint32_t first_id, size_t k,
                     Variant variant) {
    DkgResult dkg = RunDkg(DkgParams{k, k}, setup_rng);
    std::vector<uint32_t> chain;
    for (uint32_t i = 0; i < k; i++) {
      chain.push_back(first_id + i);
    }
    for (uint32_t pos = 0; pos < k; pos++) {
      uint32_t id = first_id + pos;
      KemKeypair key = KemKeyGen(setup_rng);
      auto proc = std::make_unique<NodeProcess>(id, variant, key,
                                                driver_key.pk);
      EXPECT_TRUE(proc->Listen(0));
      roster.push_back(MeshPeer{id, "127.0.0.1", proc->port(), key.pk});
      joins.push_back(Join{id, gid, MakeNodeGroupKeys(dkg, chain, pos)});
      procs.push_back(std::move(proc));
    }
    return dkg;
  }

  NodeProcess* Proc(uint32_t server_id) {
    for (auto& proc : procs) {
      if (proc->server_id() == server_id) {
        return proc.get();
      }
    }
    return nullptr;
  }

  bool Connect() {
    for (auto& proc : procs) {
      proc->Start();
    }
    driver.SetRoster(roster);
    if (!driver.ConnectAndPushRoster()) {
      return false;
    }
    for (const Join& join : joins) {
      if (!driver.SendJoinGroup(join.server_id, join.gid, join.keys)) {
        return false;
      }
    }
    return true;
  }

  // Builds the in-process twin of this deployment from the same key
  // material (for transport-equivalence comparisons).
  void BuildLocalTwin(LocalBus* bus,
                      std::vector<std::unique_ptr<AtomNode>>* nodes,
                      Variant variant) {
    for (const Join& join : joins) {
      nodes->push_back(std::make_unique<AtomNode>(join.server_id, variant));
      nodes->back()->JoinGroup(join.gid, join.keys);
      bus->RegisterNode(nodes->back().get());
    }
  }

  void StopAll() {
    driver.Stop();
    for (auto& proc : procs) {
      proc->Stop();
    }
  }
};

// ------------------------------------------------- transport equivalence

TEST(TransportEquivalence, MeshMatchesLocalBusByteForByte) {
  MeshDeployment dep;
  auto g0 = dep.AddGroup(0, 100, 3, Variant::kTrap);
  auto g1 = dep.AddGroup(1, 200, 3, Variant::kTrap);
  ASSERT_TRUE(dep.Connect());

  LocalBus bus;
  std::vector<std::unique_ptr<AtomNode>> nodes;
  dep.BuildLocalTwin(&bus, &nodes, Variant::kTrap);

  CiphertextBatch batch = MakeBatch(g0.pub.group_pk, 4, dep.setup_rng);
  auto sent = DecryptBatch(GroupSecret(g0), batch);
  NodeMsg entry = EntryMsg(0, batch, {g1.pub.group_pk});

  // Identically seeded drivers: LocalBus::Run and TcpPeerMesh::Run each
  // consume exactly one 256-bit run key from their generator.
  Rng rng_local(uint64_t{424242});
  Rng rng_mesh(uint64_t{424242});

  // Hop 1: group 0 forwards to group 1.
  bus.Send(Envelope{100, entry});
  ASSERT_TRUE(bus.Run(rng_local));
  dep.driver.Send(Envelope{100, entry});
  ASSERT_TRUE(dep.driver.Run(rng_mesh));

  ASSERT_EQ(bus.outputs().size(), 1u);
  ASSERT_EQ(dep.driver.outputs().size(), 1u);
  EXPECT_EQ(EncodeNodeMsg(dep.driver.outputs()[0]),
            EncodeNodeMsg(bus.outputs()[0]))
      << "hop 1 group outputs differ between transports";

  // Hop 2: group 1 is the exit layer; a second Run must reset the
  // per-server delivery counters identically on both transports.
  CiphertextBatch forwarded = bus.outputs()[0].subs[0];
  bus.ClearOutputs();
  dep.driver.ClearOutputs();
  NodeMsg exit_entry = EntryMsg(1, forwarded, {});
  bus.Send(Envelope{200, exit_entry});
  ASSERT_TRUE(bus.Run(rng_local));
  dep.driver.Send(Envelope{200, exit_entry});
  ASSERT_TRUE(dep.driver.Run(rng_mesh));

  ASSERT_EQ(bus.outputs().size(), 1u);
  ASSERT_EQ(dep.driver.outputs().size(), 1u);
  EXPECT_EQ(EncodeNodeMsg(dep.driver.outputs()[0]),
            EncodeNodeMsg(bus.outputs()[0]))
      << "exit hop outputs differ between transports";
  // And the plaintexts are the user's messages.
  EXPECT_EQ(DecryptBatch(Scalar::Zero(), dep.driver.outputs()[0].subs[0]),
            sent);
}

TEST(TransportEquivalence, NizkRoundMatchesLocalBus) {
  // NIZK exercises proof-carrying envelopes (orders of magnitude more
  // wire surface) and per-delivery generator use for proving.
  MeshDeployment dep;
  auto g0 = dep.AddGroup(0, 100, 3, Variant::kNizk);
  ASSERT_TRUE(dep.Connect());

  LocalBus bus;
  std::vector<std::unique_ptr<AtomNode>> nodes;
  dep.BuildLocalTwin(&bus, &nodes, Variant::kNizk);

  CiphertextBatch batch = MakeBatch(g0.pub.group_pk, 3, dep.setup_rng);
  auto sent = DecryptBatch(GroupSecret(g0), batch);
  NodeMsg entry = EntryMsg(0, batch, {});

  Rng rng_local(uint64_t{515151});
  Rng rng_mesh(uint64_t{515151});
  bus.Send(Envelope{100, entry});
  ASSERT_TRUE(bus.Run(rng_local));
  dep.driver.Send(Envelope{100, entry});
  ASSERT_TRUE(dep.driver.Run(rng_mesh));

  ASSERT_EQ(bus.outputs().size(), 1u);
  ASSERT_EQ(dep.driver.outputs().size(), 1u);
  EXPECT_EQ(EncodeNodeMsg(dep.driver.outputs()[0]),
            EncodeNodeMsg(bus.outputs()[0]));
  EXPECT_EQ(DecryptBatch(Scalar::Zero(), dep.driver.outputs()[0].subs[0]),
            sent);
}

// ---------------------------------------------------- fault propagation

TEST(TransportFaults, EvilServerMidChainAbortsTheRun) {
  // Server 101 (chain position 1) mauls its outbound shuffle batch; the
  // NIZK verifier at position 2 must reject and the abort must propagate
  // over TCP to the driver.
  MeshDeployment dep;
  auto g0 = dep.AddGroup(0, 100, 3, Variant::kNizk);
  dep.Proc(101)->SetOutboundTamper([](Envelope& envelope) {
    if (envelope.msg.type == NodeMsg::Type::kShuffleStep) {
      envelope.msg.batch[0][0].c =
          envelope.msg.batch[0][0].c + Point::Generator();
    }
  });
  ASSERT_TRUE(dep.Connect());

  CiphertextBatch batch = MakeBatch(g0.pub.group_pk, 3, dep.setup_rng);
  dep.driver.Send(Envelope{100, EntryMsg(0, batch, {})});
  Rng rng(uint64_t{616161});
  EXPECT_FALSE(dep.driver.Run(rng));
  ASSERT_GE(dep.driver.aborts().size(), 1u);
  EXPECT_NE(dep.driver.aborts()[0].abort_reason.find("shuffle proof"),
            std::string::npos)
      << dep.driver.aborts()[0].abort_reason;
}

TEST(TransportFaults, KilledPeerSurfacesAsAbortNotHang) {
  MeshDeployment dep;
  auto g0 = dep.AddGroup(0, 100, 3, Variant::kTrap);
  ASSERT_TRUE(dep.Connect());
  dep.driver.set_run_timeout(30s);
  dep.driver.set_dial_attempts(1);

  // Unplug the middle server after setup: the next run must fail fast
  // with an abort (kBeginRound cannot be acked / the chain cannot proceed).
  dep.Proc(101)->Stop();

  CiphertextBatch batch = MakeBatch(g0.pub.group_pk, 3, dep.setup_rng);
  dep.driver.Send(Envelope{100, EntryMsg(0, batch, {})});
  Rng rng(uint64_t{717171});
  EXPECT_FALSE(dep.driver.Run(rng));
  ASSERT_GE(dep.driver.aborts().size(), 1u);
  EXPECT_NE(dep.driver.aborts()[0].abort_reason.find("transport"),
            std::string::npos)
      << dep.driver.aborts()[0].abort_reason;
}

TEST(TransportFaults, PeerKilledMidRunAbortsViaNeighbour) {
  // Kill the LAST chain server while position 0 is already mixing: the
  // driver keeps its links, but server 101's forward to 102 fails and
  // must come back as an abort, exercising the server-side
  // reconnect-then-report path.
  MeshDeployment dep;
  auto g0 = dep.AddGroup(0, 100, 3, Variant::kTrap);
  std::atomic<bool> killed{false};
  dep.Proc(101)->SetOutboundTamper([&](Envelope& envelope) {
    if (envelope.msg.type == NodeMsg::Type::kShuffleStep &&
        !killed.exchange(true)) {
      dep.Proc(102)->Stop();
    }
  });
  ASSERT_TRUE(dep.Connect());
  dep.driver.set_run_timeout(30s);

  CiphertextBatch batch = MakeBatch(g0.pub.group_pk, 3, dep.setup_rng);
  dep.driver.Send(Envelope{100, EntryMsg(0, batch, {})});
  Rng rng(uint64_t{818181});
  EXPECT_FALSE(dep.driver.Run(rng));
  ASSERT_GE(dep.driver.aborts().size(), 1u);
  EXPECT_NE(dep.driver.aborts()[0].abort_reason.find("transport"),
            std::string::npos)
      << dep.driver.aborts()[0].abort_reason;
}

TEST(TransportFaults, OneFaultingChainDoesNotSwallowTheOthers) {
  // Two chains in one legacy run: chain 0 is misrouted (abort), chain 1
  // is healthy. The healthy chain must still produce its group output —
  // a faulting chain resolves itself, it must not poison the round's
  // other chains into a run-timeout stall.
  MeshDeployment dep;
  auto g0 = dep.AddGroup(0, 100, 2, Variant::kTrap);
  auto g1 = dep.AddGroup(1, 200, 2, Variant::kTrap);
  ASSERT_TRUE(dep.Connect());
  dep.driver.set_run_timeout(60s);

  // Entry for group 0 sent to a server of group 1: unroutable -> abort.
  dep.driver.Send(Envelope{
      200, EntryMsg(0, MakeBatch(g0.pub.group_pk, 2, dep.setup_rng), {})});
  dep.driver.Send(Envelope{
      200, EntryMsg(1, MakeBatch(g1.pub.group_pk, 2, dep.setup_rng), {})});
  Rng rng(uint64_t{919191});
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(dep.driver.Run(rng));
  EXPECT_LT(std::chrono::steady_clock::now() - start, 30s)
      << "run resolved only via the run timeout";
  ASSERT_EQ(dep.driver.outputs().size(), 1u);
  EXPECT_EQ(dep.driver.outputs()[0].gid, 1u);
  ASSERT_GE(dep.driver.aborts().size(), 1u);
  EXPECT_NE(dep.driver.aborts()[0].abort_reason.find("unroutable"),
            std::string::npos);
}

TEST(TransportFaults, MalformedEnvelopeFrameBecomesAbort) {
  MeshDeployment dep;
  dep.AddGroup(0, 100, 2, Variant::kTrap);
  ASSERT_TRUE(dep.Connect());

  // A syntactically valid frame whose body is not a decodable envelope:
  // the server must report it instead of crashing or ignoring it.
  Bytes junk = {0xde, 0xad, 0xbe, 0xef};
  ASSERT_TRUE(dep.driver.SendFrame(100, LinkMsg::kEnvelope, BytesView(junk)));
  EXPECT_TRUE(WaitUntil([&] { return dep.driver.abort_count() > 0; }));
  EXPECT_NE(dep.driver.aborts()[0].abort_reason.find("malformed"),
            std::string::npos);
}

// ----------------------------------------- distributed pipelined rounds

// One key epoch whose intake feeds overlapping engine rounds: the shared
// fixture for every DistributedRoundDriver test.
struct PipelinedFixture {
  Rng rng{uint64_t{0x9febe11e}};
  std::unique_ptr<Round> round;
  uint64_t next_client = 1;

  explicit PipelinedFixture(Variant variant, size_t iterations = 2)
      : is_trap(variant == Variant::kTrap) {
    RoundConfig config;
    config.params.variant = variant;
    config.params.num_servers = 4;
    config.params.num_groups = 2;
    config.params.group_size = 2;
    config.params.honest_needed = 1;
    config.params.iterations = iterations;
    config.params.message_len = 32;
    config.beacon = ToBytes("net-test-pipelined-epoch");
    config.workers = 1;
    round = std::make_unique<Round>(config, rng);
  }

  EngineRound TakeSpec(size_t users) {
    for (size_t u = 0; u < users; u++) {
      uint32_t gid = static_cast<uint32_t>(u % round->NumGroups());
      std::string msg = "m" + std::to_string(next_client);
      bool ok;
      if (is_trap) {
        auto sub = MakeTrapSubmission(round->EntryPk(gid), gid,
                                      round->TrusteePk(),
                                      BytesView(ToBytes(msg)),
                                      round->layout(), rng);
        sub.client_id = next_client;
        ok = round->SubmitTrap(sub);
      } else {
        auto sub = MakeNizkSubmission(round->EntryPk(gid), gid,
                                      BytesView(ToBytes(msg)),
                                      round->layout(), rng);
        sub.client_id = next_client;
        ok = round->SubmitNizk(sub);
      }
      next_client++;
      EXPECT_TRUE(ok);
    }
    return round->TakeEngineRound({}, rng);
  }

  bool is_trap;
};

// An in-process mesh fleet hosting one topology group per NodeProcess.
struct PipelinedDeployment {
  Rng setup_rng{uint64_t{0x5e70}};
  KemKeypair driver_key = KemKeyGen(setup_rng);
  TcpPeerMesh mesh{TcpPeerMesh::Role::kDriver, kMeshDriverId, driver_key};
  std::vector<std::unique_ptr<NodeProcess>> procs;
  std::vector<MeshPeer> roster;
  std::vector<uint32_t> hosts;

  ~PipelinedDeployment() { StopAll(); }

  bool Build(Round& round, Variant variant, size_t max_rounds = 8) {
    size_t width = round.NumGroups();
    for (uint32_t g = 0; g < width; g++) {
      KemKeypair key = KemKeyGen(setup_rng);
      auto proc = std::make_unique<NodeProcess>(g + 1, variant, key,
                                                driver_key.pk, max_rounds);
      if (!proc->Listen(0)) {
        return false;
      }
      proc->Start();
      roster.push_back(MeshPeer{g + 1, "127.0.0.1", proc->port(), key.pk});
      hosts.push_back(g + 1);
      procs.push_back(std::move(proc));
    }
    mesh.SetRoster(roster);
    if (!mesh.ConnectAndPushRoster()) {
      return false;
    }
    for (uint32_t g = 0; g < width; g++) {
      if (!mesh.SendHostGroup(hosts[g], g, round.group(g).dkg())) {
        return false;
      }
    }
    return true;
  }

  void StopAll() {
    mesh.Stop();
    for (auto& proc : procs) {
      proc->Stop();
    }
  }
};

TEST(DistributedPipeline, OverlappingTrapRoundsMatchEngineByteForByte) {
  PipelinedFixture fx(Variant::kTrap);
  constexpr size_t kRounds = 3;
  std::vector<EngineRound> specs;
  for (size_t r = 0; r < kRounds; r++) {
    specs.push_back(fx.TakeSpec(4));
  }

  // Reference: the in-process engine runs copies of the same specs.
  std::vector<RoundResult> want;
  {
    RoundEngine engine(&ThreadPool::Shared());
    std::vector<uint64_t> tickets;
    for (const EngineRound& spec : specs) {
      tickets.push_back(engine.Submit(EngineRound(spec)));
    }
    for (uint64_t ticket : tickets) {
      want.push_back(engine.Wait(ticket).round);
    }
  }

  PipelinedDeployment dep;
  ASSERT_TRUE(dep.Build(*fx.round, Variant::kTrap));
  {
    DistributedRoundDriver driver(&dep.mesh, dep.hosts);
    driver.set_round_timeout(60s);
    // Every round enters the network before any is waited on.
    std::vector<uint64_t> tickets;
    for (EngineRound& spec : specs) {
      tickets.push_back(driver.Submit(std::move(spec)));
    }
    EXPECT_EQ(driver.InFlight(), kRounds);
    for (size_t r = 0; r < kRounds; r++) {
      RoundResult got = driver.Wait(tickets[r]).round;
      ASSERT_FALSE(got.aborted) << got.abort_reason;
      ASSERT_FALSE(want[r].aborted) << want[r].abort_reason;
      EXPECT_EQ(got.plaintexts, want[r].plaintexts)
          << "round " << r << " plaintexts diverged";
      EXPECT_EQ(got.traps_seen, want[r].traps_seen);
      EXPECT_EQ(got.inner_seen, want[r].inner_seen);
    }
    dep.StopAll();  // join readers before the driver dies
  }
}

TEST(DistributedPipeline, NizkRoundMatchesEngine) {
  PipelinedFixture fx(Variant::kNizk);
  EngineRound spec = fx.TakeSpec(2);

  RoundResult want;
  {
    RoundEngine engine(&ThreadPool::Shared());
    want = engine.RunToCompletion(EngineRound(spec)).round;
  }
  ASSERT_FALSE(want.aborted) << want.abort_reason;

  PipelinedDeployment dep;
  ASSERT_TRUE(dep.Build(*fx.round, Variant::kNizk));
  {
    DistributedRoundDriver driver(&dep.mesh, dep.hosts);
    driver.set_round_timeout(60s);
    RoundResult got = driver.Wait(driver.Submit(std::move(spec))).round;
    ASSERT_FALSE(got.aborted) << got.abort_reason;
    EXPECT_EQ(got.plaintexts, want.plaintexts);
    dep.StopAll();
  }
}

TEST(DistributedPipeline, LaneBoundRefusesExcessRoundsRoundScoped) {
  // max_rounds = 1: the second overlapping round must be refused with a
  // round-tagged abort while the first completes untouched.
  PipelinedFixture fx(Variant::kTrap);
  EngineRound first = fx.TakeSpec(2);
  EngineRound second = fx.TakeSpec(2);

  PipelinedDeployment dep;
  ASSERT_TRUE(dep.Build(*fx.round, Variant::kTrap, /*max_rounds=*/1));
  {
    DistributedRoundDriver driver(&dep.mesh, dep.hosts);
    driver.set_round_timeout(60s);
    uint64_t t1 = driver.Submit(std::move(first));
    uint64_t t2 = driver.Submit(std::move(second));
    auto r2 = driver.Wait(t2);
    EXPECT_TRUE(r2.aborted);
    EXPECT_NE(r2.abort_reason.find("too many concurrent rounds"),
              std::string::npos)
        << r2.abort_reason;
    EXPECT_NE(r2.abort_reason.find("round " + std::to_string(t2)),
              std::string::npos)
        << r2.abort_reason;
    auto r1 = driver.Wait(t1);
    EXPECT_FALSE(r1.aborted) << r1.abort_reason;
    dep.StopAll();
  }
}

TEST(MeshRoster, SetRosterDropsLinksWhoseEntryChanged) {
  // A live link to a peer whose roster entry changed must be dropped so
  // the next send redials the new entry (here: a dead port, so the send
  // fails) instead of riding the stale connection.
  Rng rng(uint64_t{0x405e7});
  KemKeypair driver_key = KemKeyGen(rng);
  KemKeypair server_key = KemKeyGen(rng);
  NodeProcess server(7, Variant::kTrap, server_key, driver_key.pk);
  ASSERT_TRUE(server.Listen(0));
  server.Start();

  TcpPeerMesh driver(TcpPeerMesh::Role::kDriver, kMeshDriverId, driver_key);
  driver.set_dial_attempts(1);
  MeshPeer good{7, "127.0.0.1", server.port(), server_key.pk};
  driver.SetRoster({good});
  Bytes probe = EncodeRoundDone(0xdead);
  ASSERT_TRUE(driver.SendFrame(7, LinkMsg::kRoundDone, BytesView(probe)));

  // Same peer id, different port: the live link must not survive.
  MeshPeer moved = good;
  moved.port = 1;  // nothing listens there
  driver.SetRoster({moved});
  EXPECT_FALSE(driver.SendFrame(7, LinkMsg::kRoundDone, BytesView(probe)));

  // Restoring the entry redials successfully.
  driver.SetRoster({good});
  EXPECT_TRUE(driver.SendFrame(7, LinkMsg::kRoundDone, BytesView(probe)));

  driver.Stop();
  server.Stop();
}

// ------------------------------------- multi-round fault isolation (TCP)

#ifdef ATOM_SERVER_BINARY

// Deliberately a separate, minimal spawn harness from the one in
// examples/distributed_nodes.cpp: the test pins the --sk argv fallback
// path while the example exercises --keyfile, and the test wants the
// smallest possible surface between fork and exec.
struct ChildServer {
  pid_t pid = -1;
  int stdin_w = -1;
  uint16_t port = 0;

  bool Spawn(uint32_t id, const Scalar& sk, const Point& driver_pk) {
    int in_pipe[2], out_pipe[2];
    if (pipe(in_pipe) != 0 || pipe(out_pipe) != 0) {
      return false;
    }
    std::string id_str = std::to_string(id);
    auto sk_bytes = sk.ToBytes();
    std::string sk_hex =
        HexEncode(BytesView(sk_bytes.data(), sk_bytes.size()));
    std::string pk_hex = HexEncode(BytesView(driver_pk.Encode()));
    pid_t child = fork();
    if (child < 0) {
      return false;
    }
    if (child == 0) {
      dup2(in_pipe[0], STDIN_FILENO);
      dup2(out_pipe[1], STDOUT_FILENO);
      close(in_pipe[0]);
      close(in_pipe[1]);
      close(out_pipe[0]);
      close(out_pipe[1]);
      execl(ATOM_SERVER_BINARY, "atom_server", "--id", id_str.c_str(),
            "--sk", sk_hex.c_str(), "--driver-pk", pk_hex.c_str(),
            static_cast<char*>(nullptr));
      _exit(127);
    }
    close(in_pipe[0]);
    close(out_pipe[1]);
    FILE* child_out = fdopen(out_pipe[0], "r");
    char line[128];
    unsigned got_port = 0;
    if (child_out == nullptr ||
        std::fgets(line, sizeof(line), child_out) == nullptr ||
        std::sscanf(line, "ATOM_SERVER_PORT=%u", &got_port) != 1) {
      if (child_out != nullptr) {
        std::fclose(child_out);
      }
      kill(child, SIGKILL);
      waitpid(child, nullptr, 0);
      return false;
    }
    std::fclose(child_out);
    pid = child;
    stdin_w = in_pipe[1];
    port = static_cast<uint16_t>(got_port);
    return true;
  }

  void Kill() {
    if (pid >= 0) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
      pid = -1;
    }
    if (stdin_w >= 0) {
      close(stdin_w);
      stdin_w = -1;
    }
  }

  ~ChildServer() { Kill(); }
};

TEST(DistributedPipelineFaults, SigkilledPeerAbortsInFlightRoundsOnly) {
  // SIGKILL a real server process while rounds r and r+1 are both in
  // flight: both must abort with round-scoped reasons; after the roster
  // is repaired with a replacement process, a freshly submitted round
  // completes and matches the in-process engine.
  signal(SIGPIPE, SIG_IGN);
  PipelinedFixture fx(Variant::kTrap, /*iterations=*/3);
  EngineRound spec_r = fx.TakeSpec(8);
  EngineRound spec_r1 = fx.TakeSpec(8);
  EngineRound spec_fresh = fx.TakeSpec(4);

  RoundResult want_fresh;
  {
    RoundEngine engine(&ThreadPool::Shared());
    want_fresh = engine.RunToCompletion(EngineRound(spec_fresh)).round;
  }
  ASSERT_FALSE(want_fresh.aborted) << want_fresh.abort_reason;

  Rng key_rng(uint64_t{0x51641});
  KemKeypair driver_key = KemKeyGen(key_rng);
  KemKeypair key1 = KemKeyGen(key_rng);
  KemKeypair key2 = KemKeyGen(key_rng);
  ChildServer server1, server2, replacement;
  ASSERT_TRUE(server1.Spawn(1, key1.sk, driver_key.pk));
  ASSERT_TRUE(server2.Spawn(2, key2.sk, driver_key.pk));

  TcpPeerMesh mesh(TcpPeerMesh::Role::kDriver, kMeshDriverId, driver_key);
  mesh.set_dial_attempts(2);
  std::vector<MeshPeer> roster = {
      MeshPeer{1, "127.0.0.1", server1.port, key1.pk},
      MeshPeer{2, "127.0.0.1", server2.port, key2.pk}};
  mesh.SetRoster(roster);
  ASSERT_TRUE(mesh.ConnectAndPushRoster());
  ASSERT_TRUE(mesh.SendHostGroup(1, 0, fx.round->group(0).dkg()));
  ASSERT_TRUE(mesh.SendHostGroup(2, 1, fx.round->group(1).dkg()));

  {
    DistributedRoundDriver driver(&mesh, {1, 2});
    driver.set_round_timeout(30s);
    uint64_t t_r = driver.Submit(std::move(spec_r));
    uint64_t t_r1 = driver.Submit(std::move(spec_r1));
    ASSERT_EQ(driver.InFlight(), 2u);

    // The hammer, while both rounds are mixing.
    server2.Kill();

    auto result_r = driver.Wait(t_r);
    EXPECT_TRUE(result_r.aborted);
    EXPECT_NE(result_r.abort_reason.find("round " + std::to_string(t_r)),
              std::string::npos)
        << "abort reason not round-scoped: " << result_r.abort_reason;
    auto result_r1 = driver.Wait(t_r1);
    EXPECT_TRUE(result_r1.aborted);
    EXPECT_NE(result_r1.abort_reason.find("round " + std::to_string(t_r1)),
              std::string::npos)
        << "abort reason not round-scoped: " << result_r1.abort_reason;

    // Repair: a replacement process takes over server id 2 (fresh key,
    // fresh port); the re-pushed roster drops stale state everywhere.
    KemKeypair key2b = KemKeyGen(key_rng);
    ASSERT_TRUE(replacement.Spawn(2, key2b.sk, driver_key.pk));
    roster[1] = MeshPeer{2, "127.0.0.1", replacement.port, key2b.pk};
    mesh.SetRoster(roster);
    ASSERT_TRUE(mesh.ConnectAndPushRoster());
    ASSERT_TRUE(mesh.SendHostGroup(2, 1, fx.round->group(1).dkg()));

    auto fresh = driver.Wait(driver.Submit(std::move(spec_fresh)));
    ASSERT_FALSE(fresh.aborted) << fresh.abort_reason;
    EXPECT_EQ(fresh.round.plaintexts, want_fresh.plaintexts);
    EXPECT_EQ(fresh.round.traps_seen, want_fresh.traps_seen);
    mesh.Stop();  // join readers before the driver dies
  }
}

#endif  // ATOM_SERVER_BINARY

// ------------------------------------------------------------ Bus interface

TEST(BusInterface, LocalBusDrivesARoundThroughTheBasePointer) {
  // The driver-facing surface is the abstract Bus: the same driver code
  // must work against any implementation.
  Rng rng(uint64_t{9900});
  DkgResult dkg = RunDkg(DkgParams{2, 2}, rng);
  std::vector<uint32_t> chain = {1, 2};
  std::vector<std::unique_ptr<AtomNode>> nodes;
  LocalBus local;
  for (uint32_t pos = 0; pos < 2; pos++) {
    nodes.push_back(std::make_unique<AtomNode>(pos + 1, Variant::kTrap));
    nodes.back()->JoinGroup(0, MakeNodeGroupKeys(dkg, chain, pos));
    local.RegisterNode(nodes.back().get());
  }
  Bus& bus = local;
  CiphertextBatch batch = MakeBatch(dkg.pub.group_pk, 4, rng);
  auto sent = DecryptBatch(GroupSecret(dkg), batch);
  bus.Send(Envelope{1, EntryMsg(0, batch, {})});
  ASSERT_TRUE(bus.Run(rng));
  ASSERT_EQ(bus.outputs().size(), 1u);
  EXPECT_EQ(DecryptBatch(Scalar::Zero(), bus.outputs()[0].subs[0]), sent);
  bus.ClearOutputs();
  EXPECT_TRUE(bus.outputs().empty());
}

}  // namespace
}  // namespace atom
