// Tests for the TCP transport layer (src/net/): envelope wire round-trips
// across every message type, frame/handshake hardening, the SerialExecutor
// delivery discipline, and — the core properties — transport equivalence
// (the same seeded round driven through LocalBus and through a TcpPeerMesh
// of NodeProcess loopback servers produces byte-identical group outputs)
// and distributed-pipeline equivalence (overlapping engine rounds driven
// through the DistributedRoundDriver produce byte-identical RoundResults
// to the in-process RoundEngine), with faults (evil server mid-chain,
// killed peer, SIGKILLed process mid-pipeline) surfacing as round-scoped
// aborts rather than hangs.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <deque>
#include <memory>
#include <set>
#include <thread>

#include "src/core/directory.h"
#include "src/core/node.h"
#include "src/core/round.h"
#include "src/core/wire.h"
#include "src/net/client_session.h"
#include "src/net/control.h"
#include "src/net/gateway.h"
#include "src/net/link.h"
#include "src/net/mesh.h"
#include "src/net/node_process.h"
#include "src/net/registry.h"
#include "src/net/round_driver.h"
#include "src/topology/permnet.h"
#include "src/util/hex.h"
#include "src/util/mpsc.h"
#include "src/util/serde.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"
#include "tests/seed_echo.h"

namespace atom {
namespace {

using namespace std::chrono_literals;

CiphertextBatch MakeBatch(const Point& pk, size_t n, Rng& rng) {
  CiphertextBatch batch(n);
  for (size_t i = 0; i < n; i++) {
    Bytes payload = {static_cast<uint8_t>(i), 0x5a};
    batch[i].push_back(
        ElGamalEncrypt(pk, *EmbedMessage(BytesView(payload)), rng));
  }
  return batch;
}

Scalar GroupSecret(const DkgResult& dkg) {
  std::vector<Share> shares;
  for (const auto& key : dkg.keys) {
    shares.push_back(Share{key.index, key.share});
  }
  auto secret = ShamirReconstruct(shares, dkg.pub.params.threshold);
  EXPECT_TRUE(secret.has_value());
  return *secret;
}

std::multiset<std::string> DecryptBatch(const Scalar& secret,
                                        const CiphertextBatch& batch) {
  std::multiset<std::string> out;
  for (const auto& vec : batch) {
    for (const auto& ct : vec) {
      auto m = ElGamalDecrypt(secret, ct);
      EXPECT_TRUE(m.has_value());
      auto bytes = ExtractMessage(*m);
      EXPECT_TRUE(bytes.has_value());
      out.insert(HexEncode(BytesView(*bytes)));
    }
  }
  return out;
}

NodeMsg EntryMsg(uint32_t gid, CiphertextBatch batch,
                 std::vector<Point> next_pks) {
  NodeMsg msg;
  msg.type = NodeMsg::Type::kShuffleStep;
  msg.gid = gid;
  msg.chain_pos = 0;
  msg.batch = std::move(batch);
  msg.next_pks = std::move(next_pks);
  return msg;
}

bool WaitUntil(const std::function<bool()>& pred,
               std::chrono::milliseconds timeout = 5s) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) {
      return true;
    }
    std::this_thread::sleep_for(10ms);
  }
  return pred();
}

// ------------------------------------------------------------ wire format

TEST(EnvelopeWire, RoundTripAllMessageTypesWithProofs) {
  // Drive one full NIZK hop by hand and push every envelope through the
  // Envelope wire format; re-encoding the decoded message must be
  // byte-identical (the transport relies on lossless round-trips for the
  // LocalBus-equivalence guarantee).
  Rng rng(uint64_t{9100});
  DkgResult dkg = RunDkg(DkgParams{3, 3}, rng);
  std::vector<uint32_t> chain = {1, 2, 3};
  std::vector<std::unique_ptr<AtomNode>> nodes;
  for (uint32_t pos = 0; pos < 3; pos++) {
    nodes.push_back(std::make_unique<AtomNode>(pos + 1, Variant::kNizk));
    nodes.back()->JoinGroup(7, MakeNodeGroupKeys(dkg, chain, pos));
  }

  std::set<NodeMsg::Type> seen;
  bool saw_shuffle_proof = false, saw_reenc_proofs = false;
  std::deque<Envelope> queue;
  queue.push_back(
      Envelope{1, EntryMsg(7, MakeBatch(dkg.pub.group_pk, 3, rng), {})});
  while (!queue.empty()) {
    Envelope env = std::move(queue.front());
    queue.pop_front();

    Bytes enc = EncodeEnvelope(env);
    auto dec = DecodeEnvelope(BytesView(enc));
    ASSERT_TRUE(dec.has_value());
    EXPECT_EQ(dec->to_server, env.to_server);
    EXPECT_EQ(EncodeEnvelope(*dec), enc);

    seen.insert(dec->msg.type);
    saw_shuffle_proof |= dec->msg.shuffle_proof.has_value();
    saw_reenc_proofs |= !dec->msg.reenc_proofs.empty();
    if (dec->msg.type == NodeMsg::Type::kGroupOutput ||
        dec->msg.type == NodeMsg::Type::kAbort) {
      continue;
    }
    for (Envelope& next :
         nodes[dec->to_server - 1]->Handle(dec->msg, rng)) {
      queue.push_back(std::move(next));
    }
  }
  EXPECT_TRUE(seen.contains(NodeMsg::Type::kShuffleStep));
  EXPECT_TRUE(seen.contains(NodeMsg::Type::kReEncStep));
  EXPECT_TRUE(seen.contains(NodeMsg::Type::kGroupOutput));
  EXPECT_TRUE(saw_shuffle_proof);
  EXPECT_TRUE(saw_reenc_proofs);

  // kAbort round-trips too (not produced by an honest hop).
  NodeMsg abort_msg;
  abort_msg.type = NodeMsg::Type::kAbort;
  abort_msg.gid = 7;
  abort_msg.abort_reason = "proof rejected";
  Envelope abort_env{2, abort_msg};
  Bytes enc = EncodeEnvelope(abort_env);
  auto dec = DecodeEnvelope(BytesView(enc));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->msg.abort_reason, "proof rejected");
  EXPECT_EQ(EncodeEnvelope(*dec), enc);
}

TEST(EnvelopeWire, RejectsTruncationJunkAndTrailingBytes) {
  Rng rng(uint64_t{9200});
  DkgResult dkg = RunDkg(DkgParams{2, 2}, rng);
  Envelope env{5, EntryMsg(3, MakeBatch(dkg.pub.group_pk, 2, rng),
                           {dkg.pub.group_pk})};
  Bytes enc = EncodeEnvelope(env);
  ASSERT_TRUE(DecodeEnvelope(BytesView(enc)).has_value());
  // Every strict prefix fails.
  for (size_t len = 0; len < enc.size(); len++) {
    EXPECT_FALSE(DecodeEnvelope(BytesView(enc.data(), len)).has_value());
  }
  // Trailing garbage fails (a frame is exactly one envelope).
  Bytes padded = enc;
  padded.push_back(0x00);
  EXPECT_FALSE(DecodeEnvelope(BytesView(padded)).has_value());
  // Corrupt message type byte (offset 12, after to_server + round_id)
  // fails.
  Bytes bad = enc;
  bad[12] = 0x7f;
  EXPECT_FALSE(DecodeEnvelope(BytesView(bad)).has_value());
  // The round tag round-trips (overlapping rounds demux by it).
  Envelope tagged = env;
  tagged.round_id = 0x1122334455667788ULL;
  auto dec = DecodeEnvelope(BytesView(EncodeEnvelope(tagged)));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->round_id, tagged.round_id);
}

// --------------------------------------------------------- serial executor

TEST(SerialExecutorTest, RunsTasksInOrderWithoutOverlap) {
  SerialExecutor serial;
  std::vector<int> order;           // written only from serial tasks
  std::atomic<bool> in_task{false};
  for (int i = 0; i < 500; i++) {
    serial.Submit([&order, &in_task, i] {
      ASSERT_FALSE(in_task.exchange(true));  // never two tasks at once
      order.push_back(i);
      in_task.store(false);
    });
  }
  serial.Drain();
  ASSERT_EQ(order.size(), 500u);
  for (int i = 0; i < 500; i++) {
    EXPECT_EQ(order[i], i);
  }
}

// ----------------------------------------------------------- secure links

struct LinkPair {
  std::unique_ptr<SecureLink> dialer;
  std::unique_ptr<SecureLink> listener;
};

// Connects two SecureLinks over loopback; either side may be nullptr when
// the handshake is expected to fail.
LinkPair Connect(uint32_t dialer_id, const KemKeypair& dialer_key,
                 uint32_t listener_id, const KemKeypair& listener_key,
                 const Point& dialer_expects_pk,
                 const std::optional<Point>& listener_expects_pk) {
  auto tcp_listener = TcpListener::Bind(0);
  EXPECT_TRUE(tcp_listener.has_value());
  LinkPair pair;
  std::thread accept_thread([&] {
    auto socket = tcp_listener->Accept();
    if (!socket) {
      return;
    }
    Rng rng = Rng::FromOsEntropy();
    pair.listener = SecureLink::Accept(
        std::move(*socket), listener_id, listener_key,
        [&](uint32_t) { return listener_expects_pk; }, rng);
  });
  auto socket = TcpSocket::Dial("127.0.0.1", tcp_listener->port());
  EXPECT_TRUE(socket.has_value());
  Rng rng = Rng::FromOsEntropy();
  pair.dialer = SecureLink::Dial(std::move(*socket), dialer_id, dialer_key,
                                 listener_id, dialer_expects_pk, rng);
  accept_thread.join();
  return pair;
}

TEST(SecureLinkTest, RoundTripsRecordsBothWays) {
  Rng rng(uint64_t{9300});
  KemKeypair a = KemKeyGen(rng), b = KemKeyGen(rng);
  LinkPair pair = Connect(10, a, 20, b, b.pk, a.pk);
  ASSERT_NE(pair.dialer, nullptr);
  ASSERT_NE(pair.listener, nullptr);
  EXPECT_EQ(pair.dialer->peer_id(), 20u);
  EXPECT_EQ(pair.listener->peer_id(), 10u);

  for (int i = 0; i < 5; i++) {
    Bytes payload = rng.NextBytes(1000 + static_cast<size_t>(i) * 137);
    ASSERT_TRUE(pair.dialer->Send(BytesView(payload)));
    auto got = pair.listener->Recv();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, payload);

    Bytes reply = rng.NextBytes(64);
    ASSERT_TRUE(pair.listener->Send(BytesView(reply)));
    auto got_reply = pair.dialer->Recv();
    ASSERT_TRUE(got_reply.has_value());
    EXPECT_EQ(*got_reply, reply);
  }
}

TEST(SecureLinkTest, HandshakeRejectsWrongListenerKey) {
  Rng rng(uint64_t{9400});
  KemKeypair a = KemKeyGen(rng), b = KemKeyGen(rng), other = KemKeyGen(rng);
  // Dialer encrypts its contribution to a key the listener does not hold:
  // the listener cannot decapsulate and must reject; the dialer never
  // completes either.
  LinkPair pair = Connect(10, a, 20, b, other.pk, a.pk);
  EXPECT_EQ(pair.dialer, nullptr);
  EXPECT_EQ(pair.listener, nullptr);
}

TEST(SecureLinkTest, HandshakeRejectsUnknownDialer) {
  Rng rng(uint64_t{9500});
  KemKeypair a = KemKeyGen(rng), b = KemKeyGen(rng);
  // Listener has no registered key for the dialer's id.
  LinkPair pair = Connect(10, a, 20, b, b.pk, std::nullopt);
  EXPECT_EQ(pair.listener, nullptr);
  EXPECT_EQ(pair.dialer, nullptr);
}

TEST(SecureLinkTest, AcceptRejectsOversizeHandshakeFrame) {
  Rng rng(uint64_t{9600});
  KemKeypair b = KemKeyGen(rng);
  auto tcp_listener = TcpListener::Bind(0);
  ASSERT_TRUE(tcp_listener.has_value());
  std::unique_ptr<SecureLink> accepted;
  std::thread accept_thread([&] {
    auto socket = tcp_listener->Accept();
    if (!socket) {
      return;
    }
    Rng accept_rng = Rng::FromOsEntropy();
    accepted = SecureLink::Accept(
        std::move(*socket), 20, b,
        [&](uint32_t) -> std::optional<Point> { return b.pk; }, accept_rng);
  });
  auto socket = TcpSocket::Dial("127.0.0.1", tcp_listener->port());
  ASSERT_TRUE(socket.has_value());
  // Declared length far past the handshake cap: must be rejected without
  // the listener attempting to allocate or read it.
  Bytes oversize = {0xff, 0xff, 0xff, 0x7f};
  ASSERT_TRUE(socket->SendAll(BytesView(oversize)));
  accept_thread.join();
  EXPECT_EQ(accepted, nullptr);
}

TEST(SecureLinkTest, AcceptRejectsTruncatedHandshakeFrame) {
  Rng rng(uint64_t{9700});
  KemKeypair b = KemKeyGen(rng);
  auto tcp_listener = TcpListener::Bind(0);
  ASSERT_TRUE(tcp_listener.has_value());
  std::unique_ptr<SecureLink> accepted;
  std::thread accept_thread([&] {
    auto socket = tcp_listener->Accept();
    if (!socket) {
      return;
    }
    Rng accept_rng = Rng::FromOsEntropy();
    accepted = SecureLink::Accept(
        std::move(*socket), 20, b,
        [&](uint32_t) -> std::optional<Point> { return b.pk; }, accept_rng);
  });
  {
    auto socket = TcpSocket::Dial("127.0.0.1", tcp_listener->port());
    ASSERT_TRUE(socket.has_value());
    // Declares 100 payload bytes, delivers 10, disconnects.
    Bytes partial = {100, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    ASSERT_TRUE(socket->SendAll(BytesView(partial)));
  }  // socket closes here
  accept_thread.join();
  EXPECT_EQ(accepted, nullptr);
}

TEST(SecureLinkTest, ReceiverRejectsTamperedRecord) {
  Rng rng(uint64_t{9800});
  KemKeypair a = KemKeyGen(rng), b = KemKeyGen(rng);
  LinkPair pair = Connect(10, a, 20, b, b.pk, a.pk);
  ASSERT_NE(pair.dialer, nullptr);
  ASSERT_NE(pair.listener, nullptr);
  // A frame that was never sealed with the session key must fail record
  // authentication and kill the link.
  Bytes forged = rng.NextBytes(64);
  ASSERT_TRUE(pair.dialer->SendRawFrameForTest(BytesView(forged)));
  EXPECT_FALSE(pair.listener->Recv().has_value());
  EXPECT_FALSE(pair.listener->alive());
}

TEST(FrameIo, ReadFrameEnforcesCallerCap) {
  auto tcp_listener = TcpListener::Bind(0);
  ASSERT_TRUE(tcp_listener.has_value());
  std::optional<Bytes> got;
  std::thread accept_thread([&] {
    auto socket = tcp_listener->Accept();
    if (!socket) {
      return;
    }
    got = ReadFrame(*socket, 16);  // cap below the sender's frame
  });
  auto socket = TcpSocket::Dial("127.0.0.1", tcp_listener->port());
  ASSERT_TRUE(socket.has_value());
  Bytes payload(64, 0xab);
  ASSERT_TRUE(WriteFrame(*socket, BytesView(payload)));
  accept_thread.join();
  EXPECT_FALSE(got.has_value());
}

// ------------------------------------------------- mesh deployment helper

struct MeshDeployment {
  Rng setup_rng{uint64_t{7100}};
  KemKeypair driver_key = KemKeyGen(setup_rng);
  TcpPeerMesh driver{TcpPeerMesh::Role::kDriver, kMeshDriverId, driver_key};
  std::vector<std::unique_ptr<NodeProcess>> procs;
  std::vector<MeshPeer> roster;
  struct Join {
    uint32_t server_id;
    uint32_t gid;
    NodeGroupKeys keys;
  };
  std::vector<Join> joins;

  MeshDeployment() {
    driver.set_run_timeout(60s);
    driver.set_control_timeout(20s);
  }

  ~MeshDeployment() { StopAll(); }

  DkgResult AddGroup(uint32_t gid, uint32_t first_id, size_t k,
                     Variant variant) {
    DkgResult dkg = RunDkg(DkgParams{k, k}, setup_rng);
    std::vector<uint32_t> chain;
    for (uint32_t i = 0; i < k; i++) {
      chain.push_back(first_id + i);
    }
    for (uint32_t pos = 0; pos < k; pos++) {
      uint32_t id = first_id + pos;
      KemKeypair key = KemKeyGen(setup_rng);
      auto proc = std::make_unique<NodeProcess>(id, variant, key,
                                                driver_key.pk);
      EXPECT_TRUE(proc->Listen(0));
      roster.push_back(MeshPeer{id, "127.0.0.1", proc->port(), key.pk});
      joins.push_back(Join{id, gid, MakeNodeGroupKeys(dkg, chain, pos)});
      procs.push_back(std::move(proc));
    }
    return dkg;
  }

  NodeProcess* Proc(uint32_t server_id) {
    for (auto& proc : procs) {
      if (proc->server_id() == server_id) {
        return proc.get();
      }
    }
    return nullptr;
  }

  bool Connect() {
    for (auto& proc : procs) {
      proc->Start();
    }
    driver.SetRoster(roster);
    if (!driver.ConnectAndPushRoster()) {
      return false;
    }
    for (const Join& join : joins) {
      if (!driver.SendJoinGroup(join.server_id, join.gid, join.keys)) {
        return false;
      }
    }
    return true;
  }

  // Builds the in-process twin of this deployment from the same key
  // material (for transport-equivalence comparisons).
  void BuildLocalTwin(LocalBus* bus,
                      std::vector<std::unique_ptr<AtomNode>>* nodes,
                      Variant variant) {
    for (const Join& join : joins) {
      nodes->push_back(std::make_unique<AtomNode>(join.server_id, variant));
      nodes->back()->JoinGroup(join.gid, join.keys);
      bus->RegisterNode(nodes->back().get());
    }
  }

  void StopAll() {
    driver.Stop();
    for (auto& proc : procs) {
      proc->Stop();
    }
  }
};

// ------------------------------------------------- transport equivalence

TEST(TransportEquivalence, MeshMatchesLocalBusByteForByte) {
  MeshDeployment dep;
  auto g0 = dep.AddGroup(0, 100, 3, Variant::kTrap);
  auto g1 = dep.AddGroup(1, 200, 3, Variant::kTrap);
  ASSERT_TRUE(dep.Connect());

  LocalBus bus;
  std::vector<std::unique_ptr<AtomNode>> nodes;
  dep.BuildLocalTwin(&bus, &nodes, Variant::kTrap);

  CiphertextBatch batch = MakeBatch(g0.pub.group_pk, 4, dep.setup_rng);
  auto sent = DecryptBatch(GroupSecret(g0), batch);
  NodeMsg entry = EntryMsg(0, batch, {g1.pub.group_pk});

  // Identically seeded drivers: LocalBus::Run and TcpPeerMesh::Run each
  // consume exactly one 256-bit run key from their generator.
  Rng rng_local(uint64_t{424242});
  Rng rng_mesh(uint64_t{424242});

  // Hop 1: group 0 forwards to group 1.
  bus.Send(Envelope{100, entry});
  ASSERT_TRUE(bus.Run(rng_local));
  dep.driver.Send(Envelope{100, entry});
  ASSERT_TRUE(dep.driver.Run(rng_mesh));

  ASSERT_EQ(bus.outputs().size(), 1u);
  ASSERT_EQ(dep.driver.outputs().size(), 1u);
  EXPECT_EQ(EncodeNodeMsg(dep.driver.outputs()[0]),
            EncodeNodeMsg(bus.outputs()[0]))
      << "hop 1 group outputs differ between transports";

  // Hop 2: group 1 is the exit layer; a second Run must reset the
  // per-server delivery counters identically on both transports.
  CiphertextBatch forwarded = bus.outputs()[0].subs[0];
  bus.ClearOutputs();
  dep.driver.ClearOutputs();
  NodeMsg exit_entry = EntryMsg(1, forwarded, {});
  bus.Send(Envelope{200, exit_entry});
  ASSERT_TRUE(bus.Run(rng_local));
  dep.driver.Send(Envelope{200, exit_entry});
  ASSERT_TRUE(dep.driver.Run(rng_mesh));

  ASSERT_EQ(bus.outputs().size(), 1u);
  ASSERT_EQ(dep.driver.outputs().size(), 1u);
  EXPECT_EQ(EncodeNodeMsg(dep.driver.outputs()[0]),
            EncodeNodeMsg(bus.outputs()[0]))
      << "exit hop outputs differ between transports";
  // And the plaintexts are the user's messages.
  EXPECT_EQ(DecryptBatch(Scalar::Zero(), dep.driver.outputs()[0].subs[0]),
            sent);
}

TEST(TransportEquivalence, NizkRoundMatchesLocalBus) {
  // NIZK exercises proof-carrying envelopes (orders of magnitude more
  // wire surface) and per-delivery generator use for proving.
  MeshDeployment dep;
  auto g0 = dep.AddGroup(0, 100, 3, Variant::kNizk);
  ASSERT_TRUE(dep.Connect());

  LocalBus bus;
  std::vector<std::unique_ptr<AtomNode>> nodes;
  dep.BuildLocalTwin(&bus, &nodes, Variant::kNizk);

  CiphertextBatch batch = MakeBatch(g0.pub.group_pk, 3, dep.setup_rng);
  auto sent = DecryptBatch(GroupSecret(g0), batch);
  NodeMsg entry = EntryMsg(0, batch, {});

  Rng rng_local(uint64_t{515151});
  Rng rng_mesh(uint64_t{515151});
  bus.Send(Envelope{100, entry});
  ASSERT_TRUE(bus.Run(rng_local));
  dep.driver.Send(Envelope{100, entry});
  ASSERT_TRUE(dep.driver.Run(rng_mesh));

  ASSERT_EQ(bus.outputs().size(), 1u);
  ASSERT_EQ(dep.driver.outputs().size(), 1u);
  EXPECT_EQ(EncodeNodeMsg(dep.driver.outputs()[0]),
            EncodeNodeMsg(bus.outputs()[0]));
  EXPECT_EQ(DecryptBatch(Scalar::Zero(), dep.driver.outputs()[0].subs[0]),
            sent);
}

// ---------------------------------------------------- fault propagation

TEST(TransportFaults, EvilServerMidChainAbortsTheRun) {
  // Server 101 (chain position 1) mauls its outbound shuffle batch; the
  // NIZK verifier at position 2 must reject and the abort must propagate
  // over TCP to the driver.
  MeshDeployment dep;
  auto g0 = dep.AddGroup(0, 100, 3, Variant::kNizk);
  dep.Proc(101)->SetOutboundTamper([](Envelope& envelope) {
    if (envelope.msg.type == NodeMsg::Type::kShuffleStep) {
      envelope.msg.batch[0][0].c =
          envelope.msg.batch[0][0].c + Point::Generator();
    }
  });
  ASSERT_TRUE(dep.Connect());

  CiphertextBatch batch = MakeBatch(g0.pub.group_pk, 3, dep.setup_rng);
  dep.driver.Send(Envelope{100, EntryMsg(0, batch, {})});
  Rng rng(uint64_t{616161});
  EXPECT_FALSE(dep.driver.Run(rng));
  ASSERT_GE(dep.driver.aborts().size(), 1u);
  EXPECT_NE(dep.driver.aborts()[0].abort_reason.find("shuffle proof"),
            std::string::npos)
      << dep.driver.aborts()[0].abort_reason;
}

TEST(TransportFaults, KilledPeerSurfacesAsAbortNotHang) {
  MeshDeployment dep;
  auto g0 = dep.AddGroup(0, 100, 3, Variant::kTrap);
  ASSERT_TRUE(dep.Connect());
  dep.driver.set_run_timeout(30s);
  dep.driver.set_dial_attempts(1);

  // Unplug the middle server after setup: the next run must fail fast
  // with an abort (kBeginRound cannot be acked / the chain cannot proceed).
  dep.Proc(101)->Stop();

  CiphertextBatch batch = MakeBatch(g0.pub.group_pk, 3, dep.setup_rng);
  dep.driver.Send(Envelope{100, EntryMsg(0, batch, {})});
  Rng rng(uint64_t{717171});
  EXPECT_FALSE(dep.driver.Run(rng));
  ASSERT_GE(dep.driver.aborts().size(), 1u);
  EXPECT_NE(dep.driver.aborts()[0].abort_reason.find("transport"),
            std::string::npos)
      << dep.driver.aborts()[0].abort_reason;
}

TEST(TransportFaults, PeerKilledMidRunAbortsViaNeighbour) {
  // Kill the LAST chain server while position 0 is already mixing: the
  // driver keeps its links, but server 101's forward to 102 fails and
  // must come back as an abort, exercising the server-side
  // reconnect-then-report path.
  MeshDeployment dep;
  auto g0 = dep.AddGroup(0, 100, 3, Variant::kTrap);
  std::atomic<bool> killed{false};
  dep.Proc(101)->SetOutboundTamper([&](Envelope& envelope) {
    if (envelope.msg.type == NodeMsg::Type::kShuffleStep &&
        !killed.exchange(true)) {
      dep.Proc(102)->Stop();
    }
  });
  ASSERT_TRUE(dep.Connect());
  dep.driver.set_run_timeout(30s);

  CiphertextBatch batch = MakeBatch(g0.pub.group_pk, 3, dep.setup_rng);
  dep.driver.Send(Envelope{100, EntryMsg(0, batch, {})});
  Rng rng(uint64_t{818181});
  EXPECT_FALSE(dep.driver.Run(rng));
  ASSERT_GE(dep.driver.aborts().size(), 1u);
  EXPECT_NE(dep.driver.aborts()[0].abort_reason.find("transport"),
            std::string::npos)
      << dep.driver.aborts()[0].abort_reason;
}

TEST(TransportFaults, OneFaultingChainDoesNotSwallowTheOthers) {
  // Two chains in one legacy run: chain 0 is misrouted (abort), chain 1
  // is healthy. The healthy chain must still produce its group output —
  // a faulting chain resolves itself, it must not poison the round's
  // other chains into a run-timeout stall.
  MeshDeployment dep;
  auto g0 = dep.AddGroup(0, 100, 2, Variant::kTrap);
  auto g1 = dep.AddGroup(1, 200, 2, Variant::kTrap);
  ASSERT_TRUE(dep.Connect());
  dep.driver.set_run_timeout(60s);

  // Entry for group 0 sent to a server of group 1: unroutable -> abort.
  dep.driver.Send(Envelope{
      200, EntryMsg(0, MakeBatch(g0.pub.group_pk, 2, dep.setup_rng), {})});
  dep.driver.Send(Envelope{
      200, EntryMsg(1, MakeBatch(g1.pub.group_pk, 2, dep.setup_rng), {})});
  Rng rng(uint64_t{919191});
  auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(dep.driver.Run(rng));
  EXPECT_LT(std::chrono::steady_clock::now() - start, 30s)
      << "run resolved only via the run timeout";
  ASSERT_EQ(dep.driver.outputs().size(), 1u);
  EXPECT_EQ(dep.driver.outputs()[0].gid, 1u);
  ASSERT_GE(dep.driver.aborts().size(), 1u);
  EXPECT_NE(dep.driver.aborts()[0].abort_reason.find("unroutable"),
            std::string::npos);
}

TEST(TransportFaults, MalformedEnvelopeFrameBecomesAbort) {
  MeshDeployment dep;
  dep.AddGroup(0, 100, 2, Variant::kTrap);
  ASSERT_TRUE(dep.Connect());

  // A syntactically valid frame whose body is not a decodable envelope:
  // the server must report it instead of crashing or ignoring it.
  Bytes junk = {0xde, 0xad, 0xbe, 0xef};
  ASSERT_TRUE(dep.driver.SendFrame(100, LinkMsg::kEnvelope, BytesView(junk)));
  EXPECT_TRUE(WaitUntil([&] { return dep.driver.abort_count() > 0; }));
  EXPECT_NE(dep.driver.aborts()[0].abort_reason.find("malformed"),
            std::string::npos);
}

// ----------------------------------------- distributed pipelined rounds

// One key epoch whose intake feeds overlapping engine rounds: the shared
// fixture for every DistributedRoundDriver test.
struct PipelinedFixture {
  Rng rng{uint64_t{0x9febe11e}};
  std::unique_ptr<Round> round;
  uint64_t next_client = 1;

  explicit PipelinedFixture(Variant variant, size_t iterations = 2,
                            size_t num_groups = 2)
      : is_trap(variant == Variant::kTrap) {
    RoundConfig config;
    config.params.variant = variant;
    config.params.num_servers = 4;
    config.params.num_groups = num_groups;
    config.params.group_size = 2;
    config.params.honest_needed = 1;
    config.params.iterations = iterations;
    config.params.message_len = 32;
    config.beacon = ToBytes("net-test-pipelined-epoch");
    config.workers = 1;
    round = std::make_unique<Round>(config, rng);
  }

  EngineRound TakeSpec(size_t users) {
    for (size_t u = 0; u < users; u++) {
      uint32_t gid = static_cast<uint32_t>(u % round->NumGroups());
      std::string msg = "m" + std::to_string(next_client);
      bool ok;
      if (is_trap) {
        auto sub = MakeTrapSubmission(round->EntryPk(gid), gid,
                                      round->TrusteePk(),
                                      BytesView(ToBytes(msg)),
                                      round->layout(), rng);
        sub.client_id = next_client;
        ok = round->SubmitTrap(sub);
      } else {
        auto sub = MakeNizkSubmission(round->EntryPk(gid), gid,
                                      BytesView(ToBytes(msg)),
                                      round->layout(), rng);
        sub.client_id = next_client;
        ok = round->SubmitNizk(sub);
      }
      next_client++;
      EXPECT_TRUE(ok);
    }
    return round->TakeEngineRound({}, rng);
  }

  bool is_trap;
};

// An in-process mesh fleet hosting one topology group per NodeProcess.
struct PipelinedDeployment {
  Rng setup_rng{uint64_t{0x5e70}};
  KemKeypair driver_key = KemKeyGen(setup_rng);
  TcpPeerMesh mesh{TcpPeerMesh::Role::kDriver, kMeshDriverId, driver_key};
  std::vector<std::unique_ptr<NodeProcess>> procs;
  std::vector<MeshPeer> roster;
  std::vector<uint32_t> hosts;

  ~PipelinedDeployment() { StopAll(); }

  // groups_per_host > 1 packs several topology groups onto one server,
  // so a hop's fan-out owes one peer multiple envelopes — the shape that
  // actually forms kEnvelopeBundle frames.
  bool Build(Round& round, Variant variant, size_t max_rounds = 8,
             bool coalesce = true,
             std::chrono::milliseconds wire_delay = {},
             size_t groups_per_host = 1) {
    size_t width = round.NumGroups();
    size_t num_hosts = (width + groups_per_host - 1) / groups_per_host;
    for (uint32_t g = 0; g < width; g++) {
      hosts.push_back(static_cast<uint32_t>(g / groups_per_host) + 1);
    }
    for (uint32_t h = 1; h <= num_hosts; h++) {
      KemKeypair key = KemKeyGen(setup_rng);
      auto proc = std::make_unique<NodeProcess>(h, variant, key,
                                                driver_key.pk, max_rounds);
      proc->set_coalesce_sends(coalesce);
      proc->set_wire_delay(wire_delay);
      if (!proc->Listen(0)) {
        return false;
      }
      proc->Start();
      roster.push_back(MeshPeer{h, "127.0.0.1", proc->port(), key.pk});
      procs.push_back(std::move(proc));
    }
    mesh.SetRoster(roster);
    if (!mesh.ConnectAndPushRoster()) {
      return false;
    }
    for (uint32_t g = 0; g < width; g++) {
      if (!mesh.SendHostGroup(hosts[g], g, round.group(g).dkg())) {
        return false;
      }
    }
    return true;
  }

  void StopAll() {
    mesh.Stop();
    for (auto& proc : procs) {
      proc->Stop();
    }
  }
};

TEST(DistributedPipeline, OverlappingTrapRoundsMatchEngineByteForByte) {
  PipelinedFixture fx(Variant::kTrap);
  constexpr size_t kRounds = 3;
  std::vector<EngineRound> specs;
  for (size_t r = 0; r < kRounds; r++) {
    specs.push_back(fx.TakeSpec(4));
  }

  // Reference: the in-process engine runs copies of the same specs.
  std::vector<RoundResult> want;
  {
    RoundEngine engine(&ThreadPool::Shared());
    std::vector<uint64_t> tickets;
    for (const EngineRound& spec : specs) {
      tickets.push_back(engine.Submit(EngineRound(spec)));
    }
    for (uint64_t ticket : tickets) {
      want.push_back(engine.Wait(ticket).round);
    }
  }

  PipelinedDeployment dep;
  ASSERT_TRUE(dep.Build(*fx.round, Variant::kTrap));
  {
    DistributedRoundDriver driver(&dep.mesh, dep.hosts);
    driver.set_round_timeout(60s);
    // Every round enters the network before any is waited on.
    std::vector<uint64_t> tickets;
    for (EngineRound& spec : specs) {
      tickets.push_back(driver.Submit(std::move(spec)));
    }
    EXPECT_EQ(driver.InFlight(), kRounds);
    for (size_t r = 0; r < kRounds; r++) {
      RoundResult got = driver.Wait(tickets[r]).round;
      ASSERT_FALSE(got.aborted) << got.abort_reason;
      ASSERT_FALSE(want[r].aborted) << want[r].abort_reason;
      EXPECT_EQ(got.plaintexts, want[r].plaintexts)
          << "round " << r << " plaintexts diverged";
      EXPECT_EQ(got.traps_seen, want[r].traps_seen);
      EXPECT_EQ(got.inner_seen, want[r].inner_seen);
    }
    dep.StopAll();  // join readers before the driver dies
  }
}

TEST(DistributedPipeline, NizkRoundMatchesEngine) {
  PipelinedFixture fx(Variant::kNizk);
  EngineRound spec = fx.TakeSpec(2);

  RoundResult want;
  {
    RoundEngine engine(&ThreadPool::Shared());
    want = engine.RunToCompletion(EngineRound(spec)).round;
  }
  ASSERT_FALSE(want.aborted) << want.abort_reason;

  PipelinedDeployment dep;
  ASSERT_TRUE(dep.Build(*fx.round, Variant::kNizk));
  {
    DistributedRoundDriver driver(&dep.mesh, dep.hosts);
    driver.set_round_timeout(60s);
    RoundResult got = driver.Wait(driver.Submit(std::move(spec))).round;
    ASSERT_FALSE(got.aborted) << got.abort_reason;
    EXPECT_EQ(got.plaintexts, want.plaintexts);
    dep.StopAll();
  }
}

TEST(DistributedPipeline, LaneBoundRefusesExcessRoundsRoundScoped) {
  // max_rounds = 1: the second overlapping round must be refused with a
  // round-tagged abort while the first completes untouched.
  PipelinedFixture fx(Variant::kTrap);
  EngineRound first = fx.TakeSpec(2);
  EngineRound second = fx.TakeSpec(2);

  PipelinedDeployment dep;
  ASSERT_TRUE(dep.Build(*fx.round, Variant::kTrap, /*max_rounds=*/1));
  {
    DistributedRoundDriver driver(&dep.mesh, dep.hosts);
    driver.set_round_timeout(60s);
    uint64_t t1 = driver.Submit(std::move(first));
    uint64_t t2 = driver.Submit(std::move(second));
    auto r2 = driver.Wait(t2);
    EXPECT_TRUE(r2.aborted);
    EXPECT_NE(r2.abort_reason.find("too many concurrent rounds"),
              std::string::npos)
        << r2.abort_reason;
    EXPECT_NE(r2.abort_reason.find("round " + std::to_string(t2)),
              std::string::npos)
        << r2.abort_reason;
    auto r1 = driver.Wait(t1);
    EXPECT_FALSE(r1.aborted) << r1.abort_reason;
    dep.StopAll();
  }
}

TEST(DistributedPipeline, CoalescingEquivalence) {
  // The WAN transport pipeline (per-peer kEnvelopeBundle coalescing +
  // async sender lanes) is pure scheduling: the same seeded specs must
  // produce byte-identical RoundResults on the in-process engine, the
  // coalesced deployment, and the legacy one-frame-per-envelope
  // deployment. Every hop draws from its own derived DRBG, so neither
  // frame packing nor arrival order may leak into the outputs. Four
  // groups on two hosting servers so multi-envelope bundles really form
  // (one group per host would degenerate to single-envelope frames).
  PipelinedFixture fx(Variant::kTrap, /*iterations=*/2, /*num_groups=*/4);
  constexpr size_t kRounds = 2;
  std::vector<EngineRound> specs;
  for (size_t r = 0; r < kRounds; r++) {
    specs.push_back(fx.TakeSpec(4));
  }

  // Reference: the in-process engine (LocalBus-equivalent executor).
  std::vector<RoundResult> want;
  {
    RoundEngine engine(&ThreadPool::Shared());
    std::vector<uint64_t> tickets;
    for (const EngineRound& spec : specs) {
      tickets.push_back(engine.Submit(EngineRound(spec)));
    }
    for (uint64_t ticket : tickets) {
      want.push_back(engine.Wait(ticket).round);
    }
  }

  struct DeploymentRun {
    std::vector<RoundResult> results;
    uint64_t bundles = 0;
  };
  auto run_deployment = [&](bool coalesce) {
    PipelinedDeployment dep;
    EXPECT_TRUE(dep.Build(*fx.round, Variant::kTrap, /*max_rounds=*/8,
                          coalesce, /*wire_delay=*/{},
                          /*groups_per_host=*/2));
    DeploymentRun run;
    {
      DistributedRoundDriver driver(&dep.mesh, dep.hosts);
      driver.set_coalesce_entries(coalesce);
      driver.set_round_timeout(60s);
      std::vector<uint64_t> tickets;
      for (const EngineRound& spec : specs) {
        tickets.push_back(driver.Submit(EngineRound(spec)));
      }
      for (uint64_t ticket : tickets) {
        run.results.push_back(driver.Wait(ticket).round);
      }
      run.bundles = dep.mesh.Stats().TotalBundles();
      for (auto& proc : dep.procs) {
        run.bundles += proc->TransportStats().TotalBundles();
      }
      dep.StopAll();  // join readers before the driver dies
    }
    return run;
  };

  DeploymentRun coalesced_run = run_deployment(true);
  DeploymentRun legacy_run = run_deployment(false);
  // The coalesced deployment really shipped multi-envelope bundles; the
  // legacy one really stayed on one-frame-per-envelope.
  EXPECT_GT(coalesced_run.bundles, 0u);
  EXPECT_EQ(legacy_run.bundles, 0u);
  std::vector<RoundResult>& coalesced = coalesced_run.results;
  std::vector<RoundResult>& legacy = legacy_run.results;
  for (size_t r = 0; r < kRounds; r++) {
    ASSERT_FALSE(want[r].aborted) << want[r].abort_reason;
    ASSERT_FALSE(coalesced[r].aborted) << coalesced[r].abort_reason;
    ASSERT_FALSE(legacy[r].aborted) << legacy[r].abort_reason;
    EXPECT_EQ(coalesced[r].plaintexts, want[r].plaintexts)
        << "round " << r << ": coalesced diverged from engine";
    EXPECT_EQ(legacy[r].plaintexts, want[r].plaintexts)
        << "round " << r << ": legacy diverged from engine";
    EXPECT_EQ(coalesced[r].traps_seen, want[r].traps_seen);
    EXPECT_EQ(legacy[r].traps_seen, want[r].traps_seen);
    EXPECT_EQ(coalesced[r].inner_seen, want[r].inner_seen);
    EXPECT_EQ(legacy[r].inner_seen, want[r].inner_seen);
  }
}

TEST(DistributedPipeline, PeerKilledMidBundleAbortsNotHangs) {
  // Kill one hosting server while coalesced bundles are in flight: every
  // affected round must resolve as a round-scoped abort (drop-to-abort
  // through the sender lane), never hang the Wait caller.
  PipelinedFixture fx(Variant::kTrap);
  EngineRound spec = fx.TakeSpec(4);

  // Slow every server's wire so the round is still mixing when the peer
  // dies mid-pipeline.
  PipelinedDeployment dep;
  ASSERT_TRUE(dep.Build(*fx.round, Variant::kTrap, /*max_rounds=*/8,
                        /*coalesce=*/true, /*wire_delay=*/50ms));
  {
    DistributedRoundDriver driver(&dep.mesh, dep.hosts);
    driver.set_round_timeout(30s);
    uint64_t ticket = driver.Submit(std::move(spec));
    dep.procs[1]->Stop();  // group 1's host dies mid-round
    auto start = std::chrono::steady_clock::now();
    EngineRoundResult result = driver.Wait(ticket);
    EXPECT_LT(std::chrono::steady_clock::now() - start, 25s)
        << "Wait resolved only via the round timeout";
    EXPECT_TRUE(result.aborted) << "round survived a dead hosting server";
    dep.StopAll();
  }
}

TEST(MeshRoster, SetRosterDropsLinksWhoseEntryChanged) {
  // A live link to a peer whose roster entry changed must be dropped so
  // the next send redials the new entry (here: a dead port, so the send
  // fails) instead of riding the stale connection.
  Rng rng(uint64_t{0x405e7});
  KemKeypair driver_key = KemKeyGen(rng);
  KemKeypair server_key = KemKeyGen(rng);
  NodeProcess server(7, Variant::kTrap, server_key, driver_key.pk);
  ASSERT_TRUE(server.Listen(0));
  server.Start();

  TcpPeerMesh driver(TcpPeerMesh::Role::kDriver, kMeshDriverId, driver_key);
  driver.set_dial_attempts(1);
  MeshPeer good{7, "127.0.0.1", server.port(), server_key.pk};
  driver.SetRoster({good});
  Bytes probe = EncodeRoundDone(0xdead);
  ASSERT_TRUE(driver.SendFrame(7, LinkMsg::kRoundDone, BytesView(probe)));

  // Same peer id, different port: the live link must not survive.
  MeshPeer moved = good;
  moved.port = 1;  // nothing listens there
  driver.SetRoster({moved});
  EXPECT_FALSE(driver.SendFrame(7, LinkMsg::kRoundDone, BytesView(probe)));

  // Restoring the entry redials successfully.
  driver.SetRoster({good});
  EXPECT_TRUE(driver.SendFrame(7, LinkMsg::kRoundDone, BytesView(probe)));

  driver.Stop();
  server.Stop();
}

// ------------------------------------- multi-round fault isolation (TCP)

#ifdef ATOM_SERVER_BINARY

// Deliberately a separate, minimal spawn harness from the one in
// examples/distributed_nodes.cpp: the test pins the --sk argv fallback
// path while the example exercises --keyfile, and the test wants the
// smallest possible surface between fork and exec.
struct ChildServer {
  pid_t pid = -1;
  int stdin_w = -1;
  uint16_t port = 0;

  bool Spawn(uint32_t id, const Scalar& sk, const Point& driver_pk) {
    int in_pipe[2], out_pipe[2];
    if (pipe(in_pipe) != 0 || pipe(out_pipe) != 0) {
      return false;
    }
    std::string id_str = std::to_string(id);
    auto sk_bytes = sk.ToBytes();
    std::string sk_hex =
        HexEncode(BytesView(sk_bytes.data(), sk_bytes.size()));
    std::string pk_hex = HexEncode(BytesView(driver_pk.Encode()));
    pid_t child = fork();
    if (child < 0) {
      return false;
    }
    if (child == 0) {
      dup2(in_pipe[0], STDIN_FILENO);
      dup2(out_pipe[1], STDOUT_FILENO);
      close(in_pipe[0]);
      close(in_pipe[1]);
      close(out_pipe[0]);
      close(out_pipe[1]);
      execl(ATOM_SERVER_BINARY, "atom_server", "--id", id_str.c_str(),
            "--sk", sk_hex.c_str(), "--driver-pk", pk_hex.c_str(),
            static_cast<char*>(nullptr));
      _exit(127);
    }
    close(in_pipe[0]);
    close(out_pipe[1]);
    FILE* child_out = fdopen(out_pipe[0], "r");
    char line[128];
    unsigned got_port = 0;
    if (child_out == nullptr ||
        std::fgets(line, sizeof(line), child_out) == nullptr ||
        std::sscanf(line, "ATOM_SERVER_PORT=%u", &got_port) != 1) {
      if (child_out != nullptr) {
        std::fclose(child_out);
      }
      kill(child, SIGKILL);
      waitpid(child, nullptr, 0);
      return false;
    }
    std::fclose(child_out);
    pid = child;
    stdin_w = in_pipe[1];
    port = static_cast<uint16_t>(got_port);
    return true;
  }

  void Kill() {
    if (pid >= 0) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
      pid = -1;
    }
    if (stdin_w >= 0) {
      close(stdin_w);
      stdin_w = -1;
    }
  }

  ~ChildServer() { Kill(); }
};

TEST(DistributedPipelineFaults, SigkilledPeerAbortsInFlightRoundsOnly) {
  // SIGKILL a real server process while rounds r and r+1 are both in
  // flight: both must abort with round-scoped reasons; after the roster
  // is repaired with a replacement process, a freshly submitted round
  // completes and matches the in-process engine.
  signal(SIGPIPE, SIG_IGN);
  const uint64_t seed = atom_test::TestSeed(0x51641);
  atom_test::SeedEcho echo(seed);
  PipelinedFixture fx(Variant::kTrap, /*iterations=*/3);
  EngineRound spec_r = fx.TakeSpec(8);
  EngineRound spec_r1 = fx.TakeSpec(8);
  EngineRound spec_fresh = fx.TakeSpec(4);

  RoundResult want_fresh;
  {
    RoundEngine engine(&ThreadPool::Shared());
    want_fresh = engine.RunToCompletion(EngineRound(spec_fresh)).round;
  }
  ASSERT_FALSE(want_fresh.aborted) << want_fresh.abort_reason;

  Rng key_rng(seed);
  KemKeypair driver_key = KemKeyGen(key_rng);
  KemKeypair key1 = KemKeyGen(key_rng);
  KemKeypair key2 = KemKeyGen(key_rng);
  ChildServer server1, server2, replacement;
  ASSERT_TRUE(server1.Spawn(1, key1.sk, driver_key.pk));
  ASSERT_TRUE(server2.Spawn(2, key2.sk, driver_key.pk));

  TcpPeerMesh mesh(TcpPeerMesh::Role::kDriver, kMeshDriverId, driver_key);
  mesh.set_dial_attempts(2);
  std::vector<MeshPeer> roster = {
      MeshPeer{1, "127.0.0.1", server1.port, key1.pk},
      MeshPeer{2, "127.0.0.1", server2.port, key2.pk}};
  mesh.SetRoster(roster);
  ASSERT_TRUE(mesh.ConnectAndPushRoster());
  ASSERT_TRUE(mesh.SendHostGroup(1, 0, fx.round->group(0).dkg()));
  ASSERT_TRUE(mesh.SendHostGroup(2, 1, fx.round->group(1).dkg()));

  {
    DistributedRoundDriver driver(&mesh, {1, 2});
    driver.set_round_timeout(30s);
    uint64_t t_r = driver.Submit(std::move(spec_r));
    uint64_t t_r1 = driver.Submit(std::move(spec_r1));
    ASSERT_EQ(driver.InFlight(), 2u);

    // The hammer, while both rounds are mixing.
    server2.Kill();

    auto result_r = driver.Wait(t_r);
    EXPECT_TRUE(result_r.aborted);
    EXPECT_NE(result_r.abort_reason.find("round " + std::to_string(t_r)),
              std::string::npos)
        << "abort reason not round-scoped: " << result_r.abort_reason;
    auto result_r1 = driver.Wait(t_r1);
    EXPECT_TRUE(result_r1.aborted);
    EXPECT_NE(result_r1.abort_reason.find("round " + std::to_string(t_r1)),
              std::string::npos)
        << "abort reason not round-scoped: " << result_r1.abort_reason;

    // Repair: a replacement process takes over server id 2 (fresh key,
    // fresh port); the re-pushed roster drops stale state everywhere.
    KemKeypair key2b = KemKeyGen(key_rng);
    ASSERT_TRUE(replacement.Spawn(2, key2b.sk, driver_key.pk));
    roster[1] = MeshPeer{2, "127.0.0.1", replacement.port, key2b.pk};
    mesh.SetRoster(roster);
    ASSERT_TRUE(mesh.ConnectAndPushRoster());
    ASSERT_TRUE(mesh.SendHostGroup(2, 1, fx.round->group(1).dkg()));

    auto fresh = driver.Wait(driver.Submit(std::move(spec_fresh)));
    ASSERT_FALSE(fresh.aborted) << fresh.abort_reason;
    EXPECT_EQ(fresh.round.plaintexts, want_fresh.plaintexts);
    EXPECT_EQ(fresh.round.traps_seen, want_fresh.traps_seen);
    mesh.Stop();  // join readers before the driver dies
  }
}

#endif  // ATOM_SERVER_BINARY

// --------------------------------------------------- adjacency compression

AdjacencyTable TableFor(const Topology& topology) {
  AdjacencyTable adjacency(topology.NumLayers() - 1);
  for (size_t layer = 0; layer + 1 < topology.NumLayers(); layer++) {
    adjacency[layer].resize(topology.Width());
    for (uint32_t g = 0; g < topology.Width(); g++) {
      adjacency[layer][g] = topology.Neighbors(layer, g);
    }
  }
  return adjacency;
}

TEST(AdjacencyWire, DeltaBitmapRoundTripAtG64) {
  // The square network at G=64: complete bipartite layers, the O(G²)
  // worst case the compression exists for. Round-trip must be exact
  // (hop fan-out order is load-bearing) and far below the naive 4
  // bytes/edge encoding.
  constexpr uint32_t kG = 64;
  SquareTopology square(kG, 4);
  AdjacencyTable adjacency = TableFor(square);
  Bytes enc = EncodeAdjacency(adjacency, kG);
  auto dec = DecodeAdjacency(BytesView(enc), 3, kG);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, adjacency);
  const size_t naive = 3 * kG * (4 + 4 * kG);  // count + 4 bytes per edge
  EXPECT_LT(enc.size() * 16, naive)
      << "bitmap rows should cut the square network ~32x, got "
      << enc.size() << " vs naive " << naive;

  // The butterfly's neighbour lists are short and non-monotone
  // ({v, v XOR bit}): the zigzag-delta mode must preserve order exactly.
  ButterflyTopology butterfly(6, 2);
  AdjacencyTable badj = TableFor(butterfly);
  Bytes benc = EncodeAdjacency(badj, kG);
  auto bdec = DecodeAdjacency(
      BytesView(benc), static_cast<uint32_t>(butterfly.NumLayers() - 1), kG);
  ASSERT_TRUE(bdec.has_value());
  EXPECT_EQ(*bdec, badj);
}

TEST(AdjacencyWire, RejectsTruncationJunkAndOutOfRangeNeighbors) {
  SquareTopology square(8, 3);
  AdjacencyTable adjacency = TableFor(square);
  Bytes enc = EncodeAdjacency(adjacency, 8);
  ASSERT_TRUE(DecodeAdjacency(BytesView(enc), 2, 8).has_value());
  for (size_t len = 0; len < enc.size(); len++) {
    EXPECT_FALSE(
        DecodeAdjacency(BytesView(enc.data(), len), 2, 8).has_value());
  }
  Bytes padded = enc;
  padded.push_back(0x00);
  EXPECT_FALSE(DecodeAdjacency(BytesView(padded), 2, 8).has_value());
  // Unknown list mode.
  Bytes bad_mode = {0x02};
  EXPECT_FALSE(DecodeAdjacency(BytesView(bad_mode), 1, 1).has_value());
  // Delta mode, count past the width: rejected before any allocation.
  Bytes big_count = {0x00, 0x41};  // mode 0, varint count = 65
  EXPECT_FALSE(DecodeAdjacency(BytesView(big_count), 1, 64).has_value());
  // Delta mode, neighbour past the width.
  Bytes oob = {0x00, 0x01, 0x40};  // mode 0, one neighbour, value 64
  EXPECT_FALSE(DecodeAdjacency(BytesView(oob), 1, 64).has_value());
  // Bitmap mode: set padding bits past the width alias the canonical
  // frame and must be rejected (non-canonical input). One boundary at
  // width 6 = six lists, each a full bitmap row {0..5}.
  Bytes clean_bitmap;
  for (int g = 0; g < 6; g++) {
    clean_bitmap.push_back(0x01);
    clean_bitmap.push_back(0x3f);
  }
  auto full = DecodeAdjacency(BytesView(clean_bitmap), 1, 6);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ((*full)[0][0], (std::vector<uint32_t>{0, 1, 2, 3, 4, 5}));
  Bytes junk_padding = clean_bitmap;
  junk_padding.back() = 0xff;  // same six neighbours + two padding bits
  EXPECT_FALSE(DecodeAdjacency(BytesView(junk_padding), 1, 6).has_value());
}

TEST(AdjacencyWire, BeginRoundSpecRoundTripsCompressed) {
  // The compressed adjacency rides inside kBeginRound: a full spec must
  // survive encode -> decode -> re-encode byte-identically.
  Rng rng(uint64_t{0xad70});
  WireRoundSpec spec;
  spec.variant = 0;
  spec.layers = 3;
  spec.width = 4;
  spec.hop_workers = 2;
  SquareTopology square(4, 3);
  spec.adjacency = TableFor(square);
  spec.hosts = {1, 2, 1, 2};
  for (uint32_t g = 0; g < 4; g++) {
    spec.group_pks.push_back(Point::BaseMul(Scalar::Random(rng)));
  }
  spec.native_exit = true;
  spec.plaintext_len = 32;
  spec.padded_len = 34;
  spec.num_points = 2;
  spec.commitments.resize(4);
  spec.commitments[1].push_back({});
  rng.Fill(spec.commitments[1][0].data(), 32);

  std::array<uint8_t, 32> root{};
  rng.Fill(root.data(), root.size());
  Bytes enc = EncodeBeginRound(9, 77, root, &spec);
  auto dec = DecodeBeginRound(BytesView(enc));
  ASSERT_TRUE(dec.has_value());
  ASSERT_TRUE(dec->spec.has_value());
  EXPECT_EQ(dec->round_id, 77u);
  EXPECT_EQ(dec->spec->adjacency, spec.adjacency);
  EXPECT_EQ(dec->spec->hosts, spec.hosts);
  EXPECT_EQ(dec->spec->commitments, spec.commitments);
  EXPECT_EQ(EncodeBeginRound(9, 77, dec->root_key, &*dec->spec), enc);
}

// ------------------------------------------------------- mesh backpressure

TEST(MeshBackpressure, OverloadedPeerQueueDropsToAbortNotBlock) {
  // Server A's link to server B is stalled (WAN emulation) and its send
  // queue bound is tiny: a flood of envelopes must DROP past the bound —
  // fast, never blocking senders without limit — and the failures must
  // surface to the driver as aborts (drop-to-abort semantics).
  Rng rng(uint64_t{0xbac9});
  KemKeypair driver_key = KemKeyGen(rng);
  KemKeypair a_key = KemKeyGen(rng);
  KemKeypair b_key = KemKeyGen(rng);
  TcpPeerMesh driver(TcpPeerMesh::Role::kDriver, kMeshDriverId, driver_key);
  TcpPeerMesh a(TcpPeerMesh::Role::kServer, 8, a_key);
  TcpPeerMesh b(TcpPeerMesh::Role::kServer, 9, b_key);
  ASSERT_TRUE(a.Listen(0));
  a.Start();
  ASSERT_TRUE(b.Listen(0));
  b.Start();
  a.AddPeerKey(kMeshDriverId, driver_key.pk);
  b.AddPeerKey(8, a_key.pk);
  driver.SetRoster({MeshPeer{8, "127.0.0.1", a.listen_port(), a_key.pk}});
  a.SetRoster({MeshPeer{9, "127.0.0.1", b.listen_port(), b_key.pk}});
  // Dial driver->A once so A holds an upstream link for abort reports.
  Bytes probe = EncodeRoundDone(1);
  ASSERT_TRUE(driver.SendFrame(8, LinkMsg::kRoundDone, BytesView(probe)));

  a.set_send_delay(40ms);        // every A-side send stalls like a full WAN pipe
  a.set_send_queue_bound(64);    // one in-flight frame, nothing queued behind

  NodeMsg msg;
  msg.type = NodeMsg::Type::kShuffleStep;
  msg.gid = 3;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4;
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; i++) {
        a.Send(Envelope{9, msg, 1});
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  // Blocking behavior would serialize 32 sends x 40ms plus socket time;
  // drop-to-abort resolves the flood in a handful of link occupancies.
  EXPECT_LT(elapsed, 10s) << "senders blocked instead of dropping";
  EXPECT_GE(a.send_queue_drops(), 1u);
  EXPECT_TRUE(WaitUntil([&] { return driver.abort_count() >= 1; }))
      << "dropped sends never surfaced as driver aborts";

  driver.Stop();
  a.Stop();
  b.Stop();
}

TEST(MeshBackpressure, AsyncLaneByteBudgetDropsToAbort) {
  // The coalesced path's sender lane shares the same BYTE-accounted
  // budget as the synchronous path: while a queued bundle's bytes occupy
  // the budget, further SendEnvelopes calls past the bound must drop
  // immediately (send_queue_drops grows) and surface as driver aborts —
  // never queue unboundedly, never block the caller.
  Rng rng(uint64_t{0xbaca});
  KemKeypair driver_key = KemKeyGen(rng);
  KemKeypair a_key = KemKeyGen(rng);
  KemKeypair b_key = KemKeyGen(rng);
  TcpPeerMesh driver(TcpPeerMesh::Role::kDriver, kMeshDriverId, driver_key);
  TcpPeerMesh a(TcpPeerMesh::Role::kServer, 8, a_key);
  TcpPeerMesh b(TcpPeerMesh::Role::kServer, 9, b_key);
  ASSERT_TRUE(a.Listen(0));
  a.Start();
  ASSERT_TRUE(b.Listen(0));
  b.Start();
  a.AddPeerKey(kMeshDriverId, driver_key.pk);
  b.AddPeerKey(8, a_key.pk);
  driver.SetRoster({MeshPeer{8, "127.0.0.1", a.listen_port(), a_key.pk}});
  a.SetRoster({MeshPeer{9, "127.0.0.1", b.listen_port(), b_key.pk}});
  Bytes probe = EncodeRoundDone(1);
  ASSERT_TRUE(driver.SendFrame(8, LinkMsg::kRoundDone, BytesView(probe)));

  a.set_send_delay(40ms);  // lane drain stalls like a full WAN pipe
  // A byte budget smaller than one envelope frame: the first bundle is
  // admitted regardless (an empty lane always takes one frame so progress
  // is possible), everything behind it must drop.
  a.set_send_queue_bound(64);

  NodeMsg msg;
  msg.type = NodeMsg::Type::kShuffleStep;
  msg.gid = 3;
  auto start = std::chrono::steady_clock::now();
  constexpr int kBursts = 12;
  for (int i = 0; i < kBursts; i++) {
    std::vector<Envelope> bundle;
    bundle.push_back(Envelope{9, msg, 1});
    bundle.push_back(Envelope{9, msg, 1});
    a.SendEnvelopes(std::move(bundle));
  }
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, 10s) << "SendEnvelopes blocked instead of dropping";
  EXPECT_GE(a.send_queue_drops(), 1u);
  EXPECT_TRUE(WaitUntil([&] { return driver.abort_count() >= 1; }))
      << "dropped bundles never surfaced as driver aborts";
  MeshTransportStats stats = a.Stats();
  EXPECT_GE(stats.QueueDepthPeak(), 1u);
  EXPECT_GE(stats.send_queue_drops, 1u);

  driver.Stop();
  a.Stop();
  b.Stop();
}

// ----------------------------------------------------------- client ingress

// Twin-buildable ingress deployment: a Round fronted by a gateway, with
// clients registered through the Directory. Two fixtures constructed from
// the same seed hold byte-identical key material, so a TCP-ingress round
// is directly comparable to an in-process-submission round.
struct IngressFixture {
  RoundConfig config;
  Rng round_rng;
  std::unique_ptr<Round> round;
  Directory directory{ToBytes("ingress-genesis")};
  ClientRegistry registry;
  Rng key_rng{uint64_t{0xc11e47}};
  KemKeypair gateway_key;
  std::map<uint64_t, KemKeypair> client_keys;
  std::unique_ptr<SubmissionGateway> gateway;

  explicit IngressFixture(Variant variant, uint64_t seed = 0x137e55,
                          size_t ring_capacity = 4096)
      : round_rng(seed) {
    config.params.variant = variant;
    config.params.num_servers = 4;
    config.params.num_groups = 2;
    config.params.group_size = 2;
    config.params.honest_needed = 1;
    config.params.iterations = 2;
    config.params.message_len = 32;
    config.beacon = ToBytes("ingress-epoch");
    config.workers = 1;
    config.stream_queue_capacity = ring_capacity;
    round = std::make_unique<Round>(config, round_rng);
    gateway_key = KemKeyGen(key_rng);
  }

  ~IngressFixture() {
    if (gateway != nullptr) {
      gateway->Stop();
    }
  }

  // Generates a client key; with `registered`, signs it into the
  // directory's global registry.
  void AddClient(uint64_t id, bool registered = true) {
    SchnorrKeypair kp = SchnorrKeyGen(key_rng);
    client_keys[id] = KemKeypair{kp.sk, kp.pk};
    if (registered) {
      EXPECT_TRUE(
          directory.RegisterClient(MakeClientRegistration(id, kp, key_rng)));
    }
  }

  bool StartGateway(GatewayConfig cfg = {}) {
    registry.SeedFromDirectory(directory);
    gateway = std::make_unique<SubmissionGateway>(round.get(), &registry,
                                                  gateway_key, cfg);
    if (!gateway->Listen(0)) {
      return false;
    }
    gateway->Start();
    return true;
  }

  std::unique_ptr<ClientSession> Connect(uint64_t id) {
    return ClientSession::Connect("127.0.0.1", gateway->port(), id,
                                  client_keys[id], gateway_key.pk);
  }

  TrapSubmission MakeTrap(uint64_t client_id, uint32_t gid, Rng& rng,
                          const std::string& text) {
    auto sub = MakeTrapSubmission(round->EntryPk(gid), gid,
                                  round->TrusteePk(), BytesView(ToBytes(text)),
                                  round->layout(), rng);
    sub.client_id = client_id;
    return sub;
  }

  NizkSubmission MakeNizk(uint64_t client_id, uint32_t gid, Rng& rng,
                          const std::string& text) {
    auto sub = MakeNizkSubmission(round->EntryPk(gid), gid,
                                  BytesView(ToBytes(text)), round->layout(),
                                  rng);
    sub.client_id = client_id;
    return sub;
  }
};

RoundResult RunRoundInEngine(Round& round, uint64_t take_seed) {
  Rng take_rng(take_seed);
  RoundEngine engine(&ThreadPool::Shared());
  return engine.RunToCompletion(round.TakeEngineRound({}, take_rng)).round;
}

TEST(IngressEquivalence, TrapRoundViaTcpMatchesInProcess) {
  // Two rounds built from one seed are key-identical; the same submission
  // bytes entered via TCP ClientSessions and via in-process SubmitTrap,
  // in the same per-shard order, must produce byte-identical results.
  constexpr uint64_t kSeed = 0x7ab5eed;
  constexpr uint64_t kTakeSeed = 0x7a4e;
  IngressFixture net(Variant::kTrap, kSeed);
  IngressFixture local(Variant::kTrap, kSeed);

  Rng sub_rng(uint64_t{0x5ab1e});
  std::vector<TrapSubmission> subs;
  for (uint64_t u = 0; u < 4; u++) {
    subs.push_back(net.MakeTrap(1000 + u, static_cast<uint32_t>(u % 2),
                                sub_rng, "trap msg " + std::to_string(u)));
  }

  for (const auto& sub : subs) {
    ASSERT_TRUE(local.round->SubmitTrap(sub));
  }
  RoundResult want = RunRoundInEngine(*local.round, kTakeSeed);
  ASSERT_FALSE(want.aborted) << want.abort_reason;

  for (uint64_t u = 0; u < 4; u++) {
    net.AddClient(1000 + u);
  }
  ASSERT_TRUE(net.StartGateway());
  net.gateway->OpenRound(1);
  for (uint64_t u = 0; u < 4; u++) {
    auto session = net.Connect(1000 + u);
    ASSERT_NE(session, nullptr) << "client " << u << " failed to connect";
    EXPECT_EQ(session->WaitRoundOpen(), 1u);
    ASSERT_TRUE(session->SubmitAndWait(subs[u]));
  }
  net.gateway->Cutoff();
  EXPECT_EQ(net.gateway->accepted_count(), 4u);
  RoundResult got = RunRoundInEngine(*net.round, kTakeSeed);
  ASSERT_FALSE(got.aborted) << got.abort_reason;
  EXPECT_EQ(got.plaintexts, want.plaintexts)
      << "TCP-ingress round diverged from in-process submission";
  EXPECT_EQ(got.traps_seen, want.traps_seen);
  EXPECT_EQ(got.inner_seen, want.inner_seen);
}

TEST(IngressEquivalence, NizkRoundViaTcpMatchesInProcess) {
  constexpr uint64_t kSeed = 0x9ab5eed;
  constexpr uint64_t kTakeSeed = 0x94e;
  IngressFixture net(Variant::kNizk, kSeed);
  IngressFixture local(Variant::kNizk, kSeed);

  Rng sub_rng(uint64_t{0x6ab1e});
  std::vector<NizkSubmission> subs;
  for (uint64_t u = 0; u < 3; u++) {
    subs.push_back(net.MakeNizk(2000 + u, static_cast<uint32_t>(u % 2),
                                sub_rng, "nizk msg " + std::to_string(u)));
  }

  for (const auto& sub : subs) {
    ASSERT_TRUE(local.round->SubmitNizk(sub));
  }
  RoundResult want = RunRoundInEngine(*local.round, kTakeSeed);
  ASSERT_FALSE(want.aborted) << want.abort_reason;

  for (uint64_t u = 0; u < 3; u++) {
    net.AddClient(2000 + u);
  }
  ASSERT_TRUE(net.StartGateway());
  net.gateway->OpenRound(5);
  for (uint64_t u = 0; u < 3; u++) {
    auto session = net.Connect(2000 + u);
    ASSERT_NE(session, nullptr);
    ASSERT_TRUE(session->SubmitAndWait(subs[u]));
  }
  net.gateway->Cutoff();
  RoundResult got = RunRoundInEngine(*net.round, kTakeSeed);
  ASSERT_FALSE(got.aborted) << got.abort_reason;
  EXPECT_EQ(got.plaintexts, want.plaintexts);
}

TEST(IngressAuth, RequireSigsAcceptsSigningClients) {
  // With require_sigs on, a ClientSession (which signs every kSubmit
  // frame under its registered key) is accepted end to end — the pump's
  // batch signature check and the proof check both pass.
  IngressFixture fx(Variant::kNizk);
  fx.AddClient(500);
  GatewayConfig cfg;
  cfg.require_sigs = true;
  ASSERT_TRUE(fx.StartGateway(cfg));
  fx.gateway->OpenRound(1);
  auto session = fx.Connect(500);
  ASSERT_NE(session, nullptr);
  Rng rng(uint64_t{0xabc1});
  EXPECT_TRUE(session->SendMessage(BytesView(ToBytes("signed hello")), 0,
                                   rng));
  fx.gateway->Cutoff();
  EXPECT_EQ(fx.gateway->accepted_count(), 1u);
}

TEST(StreamingIntake, PumpBatchRejectsOnlyBadSignatures) {
  // One drained span with a corrupted signature in the middle: the batch
  // check fails, the per-signature fallback pins the culprit, and only
  // that item is rejected — its neighbours' verdicts are unaffected.
  IngressFixture fx(Variant::kNizk);
  Rng rng(uint64_t{0x51f7});
  auto kp = SchnorrKeyGen(rng);
  for (uint64_t i = 0; i < 5; i++) {
    StreamedSubmission item;
    item.nizk = fx.MakeNizk(kAnonymousClient, 0, rng,
                            "span item " + std::to_string(i));
    item.cookie = i + 1;
    item.has_sig = true;
    item.sig_pk = kp.pk;
    item.sig_msg = SubmissionSigMessage(
        BytesView(ToBytes("payload " + std::to_string(i))));
    item.sig = SchnorrSign(kp.sk, kp.pk, BytesView(item.sig_msg), rng);
    if (i == 2) {
      item.sig.response = item.sig.response + Scalar::One();
    }
    ASSERT_TRUE(fx.round->StreamSubmit(std::move(item)));
  }
  std::map<uint64_t, bool> verdicts;
  size_t drained = fx.round->PumpStream(
      0, 1, [&](uint64_t cookie, bool ok) { verdicts[cookie] = ok; });
  EXPECT_EQ(drained, 5u);
  ASSERT_EQ(verdicts.size(), 5u);
  for (uint64_t i = 0; i < 5; i++) {
    EXPECT_EQ(verdicts[i + 1], i != 2) << "item " << i;
  }
}

TEST(IngressRegistry, DuplicateIdRejectedGloballyAtRegistration) {
  Directory directory(ToBytes("reg-genesis"));
  Rng rng(uint64_t{0xd0b1e});
  SchnorrKeypair first = SchnorrKeyGen(rng);
  SchnorrKeypair second = SchnorrKeyGen(rng);
  EXPECT_TRUE(
      directory.RegisterClient(MakeClientRegistration(42, first, rng)));
  // Same id under a different key: rejected at REGISTRATION time, before
  // any entry group ever sees a submission — the squatting window the
  // per-group intake check could not close.
  EXPECT_FALSE(
      directory.RegisterClient(MakeClientRegistration(42, second, rng)));
  // A registration whose signature does not bind the claimed id fails.
  ClientRegistration forged = MakeClientRegistration(43, second, rng);
  forged.record.client_id = 44;
  EXPECT_FALSE(directory.RegisterClient(forged));
  // The anonymous id is reserved.
  EXPECT_FALSE(
      directory.RegisterClient(MakeClientRegistration(0, second, rng)));
  EXPECT_EQ(directory.NumClients(), 1u);

  // Registry sync round-trips the global table and stays duplicate-free.
  ClientRegistry registry;
  EXPECT_EQ(registry.SeedFromDirectory(directory), 1u);
  std::vector<Bytes> sync_frames = registry.EncodeSync(7);
  ASSERT_EQ(sync_frames.size(), 1u);  // chunked only past the frame cap
  Bytes sync_bytes = sync_frames[0];
  auto sync = DecodeRegistrySync(BytesView(sync_bytes));
  ASSERT_TRUE(sync.has_value());
  EXPECT_EQ(sync->seq, 7u);
  ASSERT_EQ(sync->records.size(), 1u);
  EXPECT_EQ(sync->records[0].client_id, 42u);
  ClientRegistry replica;
  EXPECT_EQ(replica.ApplySync(*sync), 1u);
  EXPECT_EQ(replica.ApplySync(*sync), 0u);  // idempotent: first wins
  EXPECT_TRUE(replica.Lookup(42).has_value());
  EXPECT_FALSE(replica.Lookup(43).has_value());
  // Sync decode hardening: truncation and trailing bytes reject.
  for (size_t len = 0; len < sync_bytes.size(); len++) {
    EXPECT_FALSE(
        DecodeRegistrySync(BytesView(sync_bytes.data(), len)).has_value());
  }
  // A declared record count the frame cannot hold is rejected before any
  // allocation.
  ByteWriter hostile;
  hostile.U64(1);
  hostile.U32(0x00ffffff);
  EXPECT_FALSE(DecodeRegistrySync(BytesView(hostile.bytes())).has_value());
}

TEST(IngressAuth, UnregisteredClientCannotConnect) {
  IngressFixture fx(Variant::kTrap);
  fx.AddClient(7, /*registered=*/true);
  fx.AddClient(8, /*registered=*/false);
  ASSERT_TRUE(fx.StartGateway());
  // The registered client's handshake completes; the unregistered id is
  // rejected inside the handshake (no registry key to authenticate).
  auto good = fx.Connect(7);
  EXPECT_NE(good, nullptr);
  EXPECT_EQ(fx.Connect(8), nullptr);
  // A registered id under the WRONG key fails too: possession of the
  // registered key is what the handshake proves.
  Rng rng(uint64_t{0xbadc0de});
  fx.client_keys[7] = KemKeyGen(rng);
  EXPECT_EQ(fx.Connect(7), nullptr);
}

TEST(IngressAuth, ForeignAndDuplicateIdsRejected) {
  IngressFixture fx(Variant::kTrap);
  fx.AddClient(21);
  fx.AddClient(22);
  ASSERT_TRUE(fx.StartGateway());
  fx.gateway->OpenRound(1);
  auto session = fx.Connect(21);
  ASSERT_NE(session, nullptr);

  Rng rng(uint64_t{0x5ea1});
  // A submission claiming someone else's id over 21's authenticated
  // channel: kForeignId, verdict before any proof work.
  TrapSubmission foreign = fx.MakeTrap(22, 0, rng, "squat attempt");
  uint64_t seq = session->Submit(foreign);
  ASSERT_NE(seq, 0u);
  auto status = session->WaitResult(seq);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, SubmitStatus::kForeignId);

  // First submission under the channel's own id is accepted; a second in
  // the same round is the duplicate-id rejection.
  EXPECT_TRUE(session->SubmitAndWait(fx.MakeTrap(21, 0, rng, "first")));
  uint64_t dup = session->Submit(fx.MakeTrap(21, 0, rng, "second"));
  ASSERT_NE(dup, 0u);
  auto dup_status = session->WaitResult(dup);
  ASSERT_TRUE(dup_status.has_value());
  EXPECT_EQ(*dup_status, SubmitStatus::kRejected);

  // With no round open, submissions bounce with kClosed.
  fx.gateway->Cutoff();
  uint64_t closed = session->Submit(fx.MakeTrap(21, 1, rng, "late"));
  ASSERT_NE(closed, 0u);
  auto closed_status = session->WaitResult(closed);
  ASSERT_TRUE(closed_status.has_value());
  EXPECT_EQ(*closed_status, SubmitStatus::kClosed);
}

TEST(IngressFaults, MidStreamDisconnectDoesNotStallRound) {
  IngressFixture fx(Variant::kTrap);
  fx.AddClient(31);
  fx.AddClient(32);
  ASSERT_TRUE(fx.StartGateway());
  fx.gateway->OpenRound(1);

  Rng rng(uint64_t{0xd15c});
  {
    auto doomed = fx.Connect(31);
    ASSERT_NE(doomed, nullptr);
    ASSERT_TRUE(doomed->SubmitAndWait(fx.MakeTrap(31, 0, rng, "landed")));
    // Fire one more without waiting for the verdict, then vanish: the
    // gateway must neither stall nor poison the round.
    doomed->Submit(fx.MakeTrap(31, 1, rng, "maybe"));
  }  // session destroyed: TCP reset mid-stream

  auto survivor = fx.Connect(32);
  ASSERT_NE(survivor, nullptr);
  ASSERT_TRUE(survivor->SubmitAndWait(fx.MakeTrap(32, 0, rng, "after a")));
  ASSERT_TRUE(survivor->SubmitAndWait(fx.MakeTrap(32, 1, rng, "after b")));

  fx.gateway->Cutoff();
  RoundResult result = RunRoundInEngine(*fx.round, 0x51de);
  ASSERT_FALSE(result.aborted) << result.abort_reason;
  // At least the three verdict-confirmed submissions mixed; the in-flight
  // one may or may not have made the cutoff — either way the round
  // completed without a stall.
  EXPECT_GE(result.plaintexts.size(), 3u);
  EXPECT_LE(result.plaintexts.size(), 4u);
}

// ----------------------------------------------- gateway lifecycle edges

TEST(GatewayLifecycle, ReconnectAfterCutoffSeesClosedThenNextRound) {
  // A client that reconnects in the cutoff-to-open window must learn
  // "intake closed" from the welcome, get kClosed verdicts (not a hang,
  // not a stale-round accept), and then ride the next kRoundOpen into an
  // accepted submission.
  IngressFixture fx(Variant::kTrap);
  fx.AddClient(51);
  ASSERT_TRUE(fx.StartGateway());
  fx.gateway->OpenRound(1);

  Rng rng(uint64_t{0xc1055});
  {
    auto session = fx.Connect(51);
    ASSERT_NE(session, nullptr);
    ASSERT_TRUE(session->SubmitAndWait(fx.MakeTrap(51, 0, rng, "round 1")));
  }
  fx.gateway->Cutoff();
  EXPECT_EQ(fx.gateway->accepted_count(), 1u);
  // Ship round 1 so the intake state resets for round 2 (what the driver
  // does between Cutoff and the next OpenRound).
  Rng take_rng(uint64_t{0x7a4e51});
  fx.round->TakeEngineRound({}, take_rng);

  auto session = fx.Connect(51);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->welcome().open_round, 0u) << "cutoff window not closed";
  uint64_t seq = session->Submit(fx.MakeTrap(51, 0, rng, "too early"));
  ASSERT_NE(seq, 0u);
  auto status = session->WaitResult(seq);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, SubmitStatus::kClosed);

  fx.gateway->OpenRound(2);
  EXPECT_EQ(session->WaitRoundOpen(), 2u);
  EXPECT_TRUE(session->SubmitAndWait(fx.MakeTrap(51, 1, rng, "round 2")));
  fx.gateway->Cutoff();
  // accepted_count is cumulative: one submission per round landed.
  EXPECT_EQ(fx.gateway->accepted_count(), 2u);
}

TEST(GatewayLifecycle, CreditWindowExactlyExhaustedNeverBackpressures) {
  // Exactly window-many in-flight submissions is legal: the server-side
  // overdraw check fires at in_flight >= window BEFORE queueing, so a
  // client that respects its advertised credits can never see
  // kBackpressure from it — and every verdict returns its credit, so a
  // subsequent submission proceeds instead of deadlocking.
  IngressFixture fx(Variant::kTrap);
  fx.AddClient(61);
  GatewayConfig cfg;
  cfg.credit_window = 4;
  ASSERT_TRUE(fx.StartGateway(cfg));
  fx.gateway->OpenRound(1);

  auto session = fx.Connect(61);
  ASSERT_NE(session, nullptr);
  ASSERT_EQ(session->welcome().credit, 4u);

  Rng rng(uint64_t{0xc4ed17});
  std::vector<uint64_t> seqs;
  for (int i = 0; i < 4; i++) {
    uint64_t seq =
        session->Submit(fx.MakeTrap(61, 0, rng, "burst " + std::to_string(i)));
    ASSERT_NE(seq, 0u) << "submit " << i << " blocked with credits left";
    seqs.push_back(seq);
  }
  size_t accepted = 0;
  for (uint64_t seq : seqs) {
    auto status = session->WaitResult(seq);
    ASSERT_TRUE(status.has_value());
    EXPECT_NE(*status, SubmitStatus::kBackpressure)
        << "overdraw check fired at exactly window in-flight";
    accepted += *status == SubmitStatus::kAccepted;
  }
  // One copy entered the round; the rest were duplicate-id rejections.
  EXPECT_EQ(accepted, 1u);

  // All four credits came back: a fifth submission (same entry group, so
  // another duplicate) gets a verdict instead of blocking forever on an
  // empty window.
  uint64_t fifth = session->Submit(fx.MakeTrap(61, 0, rng, "after drain"));
  ASSERT_NE(fifth, 0u);
  auto fifth_status = session->WaitResult(fifth);
  ASSERT_TRUE(fifth_status.has_value());
  EXPECT_EQ(*fifth_status, SubmitStatus::kRejected);
  fx.gateway->Cutoff();
  EXPECT_EQ(fx.gateway->accepted_count(), 1u);
}

TEST(GatewayLifecycle, BackpressuredSubmitRetriesWithoutDuplicates) {
  // kBackpressure's pinned meaning: the submission was NOT queued. Six
  // clients hammer a one-slot intake ring concurrently; whenever one is
  // bounced it retries the same submission. If a bounced copy had secretly
  // been queued, the retry would come back kRejected (duplicate id) —
  // so "every client ends kAccepted, never kRejected" is the proof that
  // backpressure is retry-safe, and the final round must hold exactly one
  // copy per client.
  const uint64_t seed = atom_test::TestSeed(0xbacc);
  atom_test::SeedEcho echo(seed);
  IngressFixture fx(Variant::kTrap, /*seed=*/0x137e55, /*ring_capacity=*/1);
  constexpr int kClients = 6;
  for (int u = 0; u < kClients; u++) {
    fx.AddClient(70 + u);
  }
  ASSERT_TRUE(fx.StartGateway());
  fx.gateway->OpenRound(1);

  // Build submissions serially (shared fixture rng), then race them.
  Rng rng(seed);
  std::vector<TrapSubmission> subs;
  for (int u = 0; u < kClients; u++) {
    subs.push_back(fx.MakeTrap(70 + u, 0, rng, "rush " + std::to_string(u)));
  }
  std::atomic<int> landed{0};
  std::atomic<int> bounced{0};
  std::atomic<int> wrong_verdicts{0};
  std::vector<std::thread> threads;
  for (int u = 0; u < kClients; u++) {
    threads.emplace_back([&, u] {
      auto session = fx.Connect(70 + u);
      if (session == nullptr) {
        wrong_verdicts++;
        return;
      }
      for (int attempt = 0; attempt < 200; attempt++) {
        uint64_t seq = session->Submit(subs[u]);
        auto status = seq == 0 ? std::optional<SubmitStatus>{}
                               : session->WaitResult(seq);
        if (!status.has_value()) {
          wrong_verdicts++;
          return;
        }
        if (*status == SubmitStatus::kAccepted) {
          landed++;
          return;
        }
        if (*status != SubmitStatus::kBackpressure) {
          wrong_verdicts++;  // kRejected here = a bounced copy was queued
          return;
        }
        bounced++;
        std::this_thread::sleep_for(std::chrono::microseconds(200 * (u + 1)));
      }
      wrong_verdicts++;  // starved
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(wrong_verdicts.load(), 0);
  EXPECT_EQ(landed.load(), kClients);
  fx.gateway->Cutoff();
  EXPECT_EQ(fx.gateway->accepted_count(), static_cast<size_t>(kClients));
  RoundResult result = RunRoundInEngine(*fx.round, 0x4e7e);
  ASSERT_FALSE(result.aborted) << result.abort_reason;
  EXPECT_EQ(result.plaintexts.size(), static_cast<size_t>(kClients));
}

TEST(GatewayLifecycle, RevokedMidSessionRejectedWithoutKillingTheLink) {
  // Revocation semantics pinned three ways: the live SecureLink survives
  // (the handshake already happened), the revoked id's NEW submissions
  // are rejected at verification through the registry-backed auth hook,
  // and a fresh connection under the revoked id is refused outright.
  IngressFixture fx(Variant::kTrap);
  fx.AddClient(41);
  fx.AddClient(42);
  ASSERT_TRUE(fx.StartGateway());
  fx.gateway->OpenRound(1);

  auto revoked = fx.Connect(41);
  auto honest = fx.Connect(42);
  ASSERT_NE(revoked, nullptr);
  ASSERT_NE(honest, nullptr);

  Rng rng(uint64_t{0x4e40ce});
  ASSERT_TRUE(honest->SubmitAndWait(fx.MakeTrap(42, 0, rng, "pre-revoke")));

  ASSERT_TRUE(fx.registry.Revoke(41));
  EXPECT_FALSE(fx.registry.Revoke(41)) << "double revoke claimed success";

  // The live link still carries frames and verdicts — but the submission
  // itself is rejected by the intake auth hook.
  uint64_t seq = revoked->Submit(fx.MakeTrap(41, 1, rng, "post-revoke"));
  ASSERT_NE(seq, 0u) << "revocation killed the live link";
  auto status = revoked->WaitResult(seq);
  ASSERT_TRUE(status.has_value()) << "no verdict for a revoked submission";
  EXPECT_EQ(*status, SubmitStatus::kRejected);
  EXPECT_TRUE(revoked->alive());

  // A new connection under the revoked id dies in the handshake.
  EXPECT_EQ(fx.Connect(41), nullptr);

  fx.gateway->Cutoff();
  EXPECT_EQ(fx.gateway->accepted_count(), 1u);
  RoundResult result = RunRoundInEngine(*fx.round, 0x4e41);
  ASSERT_FALSE(result.aborted) << result.abort_reason;
  EXPECT_EQ(result.plaintexts.size(), 1u);
}

TEST(ClientWire, FramesRejectTruncationJunkAndOversize) {
  // kWelcome round-trip + hardening.
  GatewayWelcome welcome;
  welcome.credit = 16;
  welcome.variant = 0;
  welcome.plaintext_len = 32;
  welcome.padded_len = 34;
  welcome.num_points = 2;
  Rng rng(uint64_t{0xc1e4});
  welcome.entry_pks = {Point::BaseMul(Scalar::Random(rng)),
                       Point::BaseMul(Scalar::Random(rng))};
  welcome.trustee_pk = Point::BaseMul(Scalar::Random(rng));
  welcome.open_round = 3;
  Bytes enc = EncodeWelcome(welcome);
  auto dec = DecodeWelcome(BytesView(enc));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(EncodeWelcome(*dec), enc);
  for (size_t len = 0; len < enc.size(); len++) {
    EXPECT_FALSE(DecodeWelcome(BytesView(enc.data(), len)).has_value());
  }
  Bytes padded = enc;
  padded.push_back(0);
  EXPECT_FALSE(DecodeWelcome(BytesView(padded)).has_value());
  // A welcome declaring more entry groups than its bytes can hold is
  // rejected before the reserve.
  ByteWriter hostile;
  hostile.U32(16);
  hostile.U8(0);
  hostile.U32(32);
  hostile.U32(34);
  hostile.U32(2);
  hostile.U32(0x00ffffff);  // entry-pk count
  EXPECT_FALSE(DecodeWelcome(BytesView(hostile.bytes())).has_value());

  // kSubmit round-trip + hardening.
  Bytes submission(100, 0x5a);
  Bytes senc = EncodeSubmit(9, BytesView(submission));
  auto sdec = DecodeSubmit(BytesView(senc));
  ASSERT_TRUE(sdec.has_value());
  EXPECT_EQ(sdec->seq, 9u);
  EXPECT_EQ(sdec->submission, submission);
  for (size_t len = 0; len < senc.size(); len++) {
    EXPECT_FALSE(DecodeSubmit(BytesView(senc.data(), len)).has_value());
  }
  Bytes strailing = senc;
  strailing.push_back(0);
  EXPECT_FALSE(DecodeSubmit(BytesView(strailing)).has_value());
  // Oversize declared submission length: rejected before allocating.
  ByteWriter oversize;
  oversize.U64(9);
  oversize.U32(0x7fffffff);
  EXPECT_FALSE(DecodeSubmit(BytesView(oversize.bytes())).has_value());

  // kSubmitResult: unknown status byte rejected.
  Bytes renc = EncodeSubmitResult(4, SubmitStatus::kBackpressure);
  auto rdec = DecodeSubmitResult(BytesView(renc));
  ASSERT_TRUE(rdec.has_value());
  EXPECT_EQ(rdec->status, SubmitStatus::kBackpressure);
  Bytes bad_status = renc;
  bad_status.back() = 0x7f;
  EXPECT_FALSE(DecodeSubmitResult(BytesView(bad_status)).has_value());

  // Frame layer: empty payloads and unknown types reject.
  EXPECT_FALSE(UnpackClientFrame(BytesView(Bytes{})).has_value());
  Bytes unknown = {0x3f, 0x01};
  EXPECT_FALSE(UnpackClientFrame(BytesView(unknown)).has_value());
  Bytes notice = PackClientFrame(ClientMsg::kRoundOpen,
                                 BytesView(EncodeRoundNotice(12)));
  auto frame = UnpackClientFrame(BytesView(notice));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, ClientMsg::kRoundOpen);
  EXPECT_EQ(DecodeRoundNotice(BytesView(frame->body)), 12u);
}

TEST(ClientWire, SignedSubmitRoundTripAndHardening) {
  Rng rng(uint64_t{0x51ca});
  auto kp = SchnorrKeyGen(rng);
  Bytes submission(64, 0x3c);
  Bytes to_sign = SubmissionSigMessage(BytesView(submission));
  auto sig = SchnorrSign(kp.sk, kp.pk, BytesView(to_sign), rng);

  Bytes enc = EncodeSubmitSigned(7, BytesView(submission), sig);
  auto dec = DecodeSubmit(BytesView(enc));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->seq, 7u);
  EXPECT_EQ(dec->submission, submission);
  ASSERT_TRUE(dec->has_sig);
  EXPECT_TRUE(SchnorrVerify(kp.pk, BytesView(to_sign), dec->sig));
  // The domain prefix separates submit signatures from every other
  // Schnorr use of the same key: the raw bytes do not verify.
  EXPECT_FALSE(SchnorrVerify(kp.pk, BytesView(submission), dec->sig));

  // Unsigned frames decode with has_sig = false.
  auto unsigned_dec = DecodeSubmit(BytesView(EncodeSubmit(7,
                                   BytesView(submission))));
  ASSERT_TRUE(unsigned_dec.has_value());
  EXPECT_FALSE(unsigned_dec->has_sig);

  // Every strict prefix of a signed frame fails to decode; so do trailing
  // junk and a flag byte outside {0,1}.
  for (size_t len = 0; len < enc.size(); len++) {
    EXPECT_FALSE(DecodeSubmit(BytesView(enc.data(), len)).has_value());
  }
  Bytes trailing = enc;
  trailing.push_back(0);
  EXPECT_FALSE(DecodeSubmit(BytesView(trailing)).has_value());
  Bytes bad_flag = EncodeSubmit(7, BytesView(submission));
  bad_flag.back() = 2;
  EXPECT_FALSE(DecodeSubmit(BytesView(bad_flag)).has_value());
}

TEST(StreamingIntake, MpscRingBoundsAndOrdersConcurrentProducers) {
  // The intake ring under contention: every push that succeeds is popped
  // exactly once, per-producer FIFO order survives, and the bound holds.
  MpscRing<uint64_t> ring(64);
  EXPECT_EQ(ring.capacity(), 64u);
  constexpr int kProducers = 4;
  constexpr uint64_t kPerProducer = 5000;
  std::atomic<uint64_t> produced{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; p++) {
    producers.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; i++) {
        uint64_t value = (static_cast<uint64_t>(p) << 32) | i;
        while (!ring.TryPush(uint64_t{value})) {
          std::this_thread::yield();
        }
        produced.fetch_add(1);
      }
    });
  }
  std::vector<uint64_t> last_seen(kProducers, 0);
  uint64_t consumed = 0;
  while (consumed < kProducers * kPerProducer) {
    auto value = ring.TryPop();
    if (!value.has_value()) {
      std::this_thread::yield();
      continue;
    }
    int p = static_cast<int>(*value >> 32);
    uint64_t i = *value & 0xffffffff;
    if (i > 0) {
      EXPECT_EQ(last_seen[p], i - 1) << "producer " << p << " reordered";
    }
    last_seen[p] = i;
    consumed++;
  }
  for (auto& t : producers) {
    t.join();
  }
  EXPECT_FALSE(ring.TryPop().has_value());
  // Full ring: pushes fail instead of blocking or growing.
  MpscRing<int> tiny(2);
  EXPECT_TRUE(tiny.TryPush(1));
  EXPECT_TRUE(tiny.TryPush(2));
  EXPECT_FALSE(tiny.TryPush(3));
  EXPECT_EQ(tiny.TryPop(), 1);
  EXPECT_TRUE(tiny.TryPush(3));
}

// ------------------------------------------------------------ Bus interface

TEST(BusInterface, LocalBusDrivesARoundThroughTheBasePointer) {
  // The driver-facing surface is the abstract Bus: the same driver code
  // must work against any implementation.
  Rng rng(uint64_t{9900});
  DkgResult dkg = RunDkg(DkgParams{2, 2}, rng);
  std::vector<uint32_t> chain = {1, 2};
  std::vector<std::unique_ptr<AtomNode>> nodes;
  LocalBus local;
  for (uint32_t pos = 0; pos < 2; pos++) {
    nodes.push_back(std::make_unique<AtomNode>(pos + 1, Variant::kTrap));
    nodes.back()->JoinGroup(0, MakeNodeGroupKeys(dkg, chain, pos));
    local.RegisterNode(nodes.back().get());
  }
  Bus& bus = local;
  CiphertextBatch batch = MakeBatch(dkg.pub.group_pk, 4, rng);
  auto sent = DecryptBatch(GroupSecret(dkg), batch);
  bus.Send(Envelope{1, EntryMsg(0, batch, {})});
  ASSERT_TRUE(bus.Run(rng));
  ASSERT_EQ(bus.outputs().size(), 1u);
  EXPECT_EQ(DecryptBatch(Scalar::Zero(), bus.outputs()[0].subs[0]), sent);
  bus.ClearOutputs();
  EXPECT_TRUE(bus.outputs().empty());
}

}  // namespace
}  // namespace atom
