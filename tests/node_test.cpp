// Tests for the per-server message-passing runtime: complete group hops
// executed by independent AtomNode state machines over the LocalBus,
// cross-checked against direct decryption, including multi-group
// interleaving and NIZK abort behaviour.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/core/node.h"
#include "src/core/wire.h"
#include "src/util/hex.h"
#include "src/util/rng.h"

namespace atom {
namespace {

struct NodeNetwork {
  Rng rng{uint64_t{6000}};
  std::vector<std::unique_ptr<AtomNode>> nodes;
  LocalBus bus;

  // Creates one group of `k` servers with ids [first_id, first_id+k) and
  // registers the nodes. Returns the DKG result (the test plays "driver").
  DkgResult AddGroup(uint32_t gid, uint32_t first_id, size_t k,
                     Variant variant) {
    DkgResult dkg = RunDkg(DkgParams{k, k}, rng);
    std::vector<uint32_t> chain;
    for (uint32_t i = 0; i < k; i++) {
      chain.push_back(first_id + i);
    }
    for (uint32_t pos = 0; pos < k; pos++) {
      auto node = std::make_unique<AtomNode>(first_id + pos, variant);
      node->JoinGroup(gid, MakeNodeGroupKeys(dkg, chain, pos));
      bus.RegisterNode(node.get());
      nodes.push_back(std::move(node));
    }
    return dkg;
  }

  CiphertextBatch MakeBatch(const Point& pk, size_t n) {
    CiphertextBatch batch(n);
    for (size_t i = 0; i < n; i++) {
      Bytes payload = {static_cast<uint8_t>(i), 0x77};
      batch[i].push_back(
          ElGamalEncrypt(pk, *EmbedMessage(BytesView(payload)), rng));
    }
    return batch;
  }

  void Inject(uint32_t gid, uint32_t first_server, CiphertextBatch batch,
              std::vector<Point> next_pks) {
    NodeMsg msg;
    msg.type = NodeMsg::Type::kShuffleStep;
    msg.gid = gid;
    msg.chain_pos = 0;
    msg.batch = std::move(batch);
    msg.next_pks = std::move(next_pks);
    bus.Send(Envelope{first_server, std::move(msg)});
  }
};

Scalar GroupSecret(const DkgResult& dkg) {
  std::vector<Share> shares;
  for (const auto& key : dkg.keys) {
    shares.push_back(Share{key.index, key.share});
  }
  auto secret = ShamirReconstruct(shares, dkg.pub.params.threshold);
  EXPECT_TRUE(secret.has_value());
  return *secret;
}

std::multiset<std::string> DecryptBatch(const Scalar& secret,
                                        const CiphertextBatch& batch) {
  std::multiset<std::string> out;
  for (const auto& vec : batch) {
    for (const auto& ct : vec) {
      auto m = ElGamalDecrypt(secret, ct);
      EXPECT_TRUE(m.has_value());
      auto bytes = ExtractMessage(*m);
      EXPECT_TRUE(bytes.has_value());
      out.insert(HexEncode(BytesView(*bytes)));
    }
  }
  return out;
}

TEST(NodeRuntime, TrapHopForwardsToNextGroup) {
  NodeNetwork net;
  auto g0 = net.AddGroup(0, 100, 3, Variant::kTrap);
  auto g1 = net.AddGroup(1, 200, 3, Variant::kTrap);

  auto batch = net.MakeBatch(g0.pub.group_pk, 6);
  auto sent = DecryptBatch(GroupSecret(g0), batch);
  net.Inject(0, 100, batch, {g1.pub.group_pk});

  ASSERT_TRUE(net.bus.Run(net.rng));
  ASSERT_EQ(net.bus.outputs().size(), 1u);
  const NodeMsg& output = net.bus.outputs()[0];
  ASSERT_EQ(output.subs.size(), 1u);
  EXPECT_EQ(output.subs[0].size(), 6u);
  // The forwarded batch decrypts under group 1's secret to the same
  // payload multiset.
  EXPECT_EQ(DecryptBatch(GroupSecret(g1), output.subs[0]), sent);
}

TEST(NodeRuntime, ExitHopYieldsPlaintexts) {
  NodeNetwork net;
  auto g0 = net.AddGroup(0, 100, 3, Variant::kTrap);
  auto batch = net.MakeBatch(g0.pub.group_pk, 4);
  auto sent = DecryptBatch(GroupSecret(g0), batch);
  net.Inject(0, 100, batch, {});  // exit layer

  ASSERT_TRUE(net.bus.Run(net.rng));
  ASSERT_EQ(net.bus.outputs().size(), 1u);
  // Fully stripped: decrypting with the zero key recovers plaintexts.
  EXPECT_EQ(DecryptBatch(Scalar::Zero(), net.bus.outputs()[0].subs[0]),
            sent);
}

TEST(NodeRuntime, SplitsAcrossTwoNeighbours) {
  NodeNetwork net;
  auto g0 = net.AddGroup(0, 100, 3, Variant::kTrap);
  auto g1 = net.AddGroup(1, 200, 2, Variant::kTrap);
  auto g2 = net.AddGroup(2, 300, 2, Variant::kTrap);

  auto batch = net.MakeBatch(g0.pub.group_pk, 6);
  auto sent = DecryptBatch(GroupSecret(g0), batch);
  net.Inject(0, 100, batch, {g1.pub.group_pk, g2.pub.group_pk});

  ASSERT_TRUE(net.bus.Run(net.rng));
  ASSERT_EQ(net.bus.outputs().size(), 1u);
  const NodeMsg& output = net.bus.outputs()[0];
  ASSERT_EQ(output.subs.size(), 2u);
  EXPECT_EQ(output.subs[0].size(), 3u);
  EXPECT_EQ(output.subs[1].size(), 3u);

  auto got = DecryptBatch(GroupSecret(g1), output.subs[0]);
  auto more = DecryptBatch(GroupSecret(g2), output.subs[1]);
  got.insert(more.begin(), more.end());
  EXPECT_EQ(got, sent);
}

TEST(NodeRuntime, TwoGroupsInterleaveOnTheBus) {
  // Two independent groups process simultaneously; the FIFO bus interleaves
  // their messages and both must complete correctly.
  NodeNetwork net;
  auto g0 = net.AddGroup(0, 100, 3, Variant::kTrap);
  auto g1 = net.AddGroup(1, 200, 3, Variant::kTrap);

  auto batch0 = net.MakeBatch(g0.pub.group_pk, 4);
  auto batch1 = net.MakeBatch(g1.pub.group_pk, 4);
  auto sent0 = DecryptBatch(GroupSecret(g0), batch0);
  auto sent1 = DecryptBatch(GroupSecret(g1), batch1);
  net.Inject(0, 100, batch0, {});
  net.Inject(1, 200, batch1, {});

  ASSERT_TRUE(net.bus.Run(net.rng));
  ASSERT_EQ(net.bus.outputs().size(), 2u);
  std::multiset<std::string> got;
  for (const NodeMsg& output : net.bus.outputs()) {
    auto part = DecryptBatch(Scalar::Zero(), output.subs[0]);
    got.insert(part.begin(), part.end());
  }
  auto want = sent0;
  want.insert(sent1.begin(), sent1.end());
  EXPECT_EQ(got, want);
}

TEST(NodeRuntime, NizkHopSucceedsHonestly) {
  NodeNetwork net;
  auto g0 = net.AddGroup(0, 100, 3, Variant::kNizk);
  auto g1 = net.AddGroup(1, 200, 3, Variant::kNizk);
  auto batch = net.MakeBatch(g0.pub.group_pk, 4);
  auto sent = DecryptBatch(GroupSecret(g0), batch);
  net.Inject(0, 100, batch, {g1.pub.group_pk});
  ASSERT_TRUE(net.bus.Run(net.rng));
  ASSERT_EQ(net.bus.outputs().size(), 1u);
  EXPECT_EQ(DecryptBatch(GroupSecret(g1), net.bus.outputs()[0].subs[0]),
            sent);
}

// A node wrapper that maliciously mauls the batch it emits after shuffling.
TEST(NodeRuntime, NizkPeerRejectsTamperedShuffle) {
  NodeNetwork net;
  auto g0 = net.AddGroup(0, 100, 3, Variant::kNizk);
  auto batch = net.MakeBatch(g0.pub.group_pk, 4);

  // Deliver position 0's honest output, then tamper with it in transit
  // (equivalently: position 0 lied); position 1 must abort the chain.
  NodeMsg msg;
  msg.type = NodeMsg::Type::kShuffleStep;
  msg.gid = 0;
  msg.chain_pos = 0;
  msg.batch = batch;
  auto envelopes = net.nodes[0]->Handle(msg, net.rng);
  ASSERT_EQ(envelopes.size(), 1u);
  envelopes[0].msg.batch[2][0].c =
      envelopes[0].msg.batch[2][0].c + Point::Generator();
  net.bus.Send(std::move(envelopes[0]));

  EXPECT_FALSE(net.bus.Run(net.rng));
  ASSERT_EQ(net.bus.aborts().size(), 1u);
  EXPECT_NE(net.bus.aborts()[0].abort_reason.find("shuffle proof"),
            std::string::npos);
}

TEST(NodeRuntime, NizkPeerRejectsTamperedReEnc) {
  NodeNetwork net;
  auto g0 = net.AddGroup(0, 100, 3, Variant::kNizk);
  auto batch = net.MakeBatch(g0.pub.group_pk, 3);

  // Run the full shuffle phase honestly, capture the first reenc step, and
  // maul one reencrypted component before delivering to position 1.
  net.Inject(0, 100, batch, {});
  // Drive manually: shuffle chain is pos 0 -> 1 -> 2 -> reenc pos 0.
  // Easiest: run the bus but intercept by tampering mid-queue is not
  // supported; instead replay the reenc step by hand.
  ASSERT_TRUE(net.bus.Run(net.rng));
  net.bus.ClearOutputs();

  // Hand-build a reenc chain: position 0 acts honestly, we corrupt output.
  NodeMsg reenc;
  reenc.type = NodeMsg::Type::kReEncStep;
  reenc.gid = 0;
  reenc.chain_pos = 0;
  reenc.subs = {net.MakeBatch(g0.pub.group_pk, 3)};
  auto envelopes = net.nodes[0]->Handle(reenc, net.rng);
  ASSERT_EQ(envelopes.size(), 1u);
  ASSERT_EQ(envelopes[0].msg.type, NodeMsg::Type::kReEncStep);
  envelopes[0].msg.subs[0][1][0].c =
      envelopes[0].msg.subs[0][1][0].c + Point::Generator();
  net.bus.Send(std::move(envelopes[0]));

  EXPECT_FALSE(net.bus.Run(net.rng));
  ASSERT_EQ(net.bus.aborts().size(), 1u);
  EXPECT_NE(net.bus.aborts()[0].abort_reason.find("reencryption proof"),
            std::string::npos);
}

TEST(NodeRuntime, BusStaysUsableAfterAnAbort) {
  // An abort ends the run that observed it, not the bus: a later Run
  // (blame / recovery traffic after a disrupted hop) must deliver again.
  NodeNetwork net;
  auto g0 = net.AddGroup(0, 100, 3, Variant::kNizk);

  NodeMsg msg;
  msg.type = NodeMsg::Type::kShuffleStep;
  msg.gid = 0;
  msg.chain_pos = 0;
  msg.batch = net.MakeBatch(g0.pub.group_pk, 4);
  auto envelopes = net.nodes[0]->Handle(msg, net.rng);
  ASSERT_EQ(envelopes.size(), 1u);
  envelopes[0].msg.batch[0][0].c =
      envelopes[0].msg.batch[0][0].c + Point::Generator();
  net.bus.Send(std::move(envelopes[0]));
  EXPECT_FALSE(net.bus.Run(net.rng));
  ASSERT_EQ(net.bus.aborts().size(), 1u);

  // Fresh honest hop on the same bus.
  auto batch = net.MakeBatch(g0.pub.group_pk, 4);
  auto sent = DecryptBatch(GroupSecret(g0), batch);
  net.Inject(0, 100, batch, {});
  net.bus.ClearOutputs();
  EXPECT_TRUE(net.bus.Run(net.rng));
  ASSERT_EQ(net.bus.outputs().size(), 1u);
  EXPECT_EQ(DecryptBatch(Scalar::Zero(), net.bus.outputs()[0].subs[0]),
            sent);
}

TEST(NodeRuntime, MultiHopAcrossThreeGroups) {
  // Chain three group hops end to end through the bus: g0 -> g1 -> exit.
  NodeNetwork net;
  auto g0 = net.AddGroup(0, 100, 2, Variant::kTrap);
  auto g1 = net.AddGroup(1, 200, 2, Variant::kTrap);

  auto batch = net.MakeBatch(g0.pub.group_pk, 4);
  auto sent = DecryptBatch(GroupSecret(g0), batch);

  net.Inject(0, 100, batch, {g1.pub.group_pk});
  ASSERT_TRUE(net.bus.Run(net.rng));
  ASSERT_EQ(net.bus.outputs().size(), 1u);
  CiphertextBatch forwarded = net.bus.outputs()[0].subs[0];
  net.bus.ClearOutputs();

  net.Inject(1, 200, forwarded, {});  // exit hop
  ASSERT_TRUE(net.bus.Run(net.rng));
  ASSERT_EQ(net.bus.outputs().size(), 1u);
  EXPECT_EQ(DecryptBatch(Scalar::Zero(), net.bus.outputs()[0].subs[0]),
            sent);
}

TEST(NodeRuntime, MessagesSurviveWireSerialization) {
  // The node runtime's envelopes must round-trip through the wire format
  // and drive the protocol identically — a transport could sit between any
  // two Handle() calls. Run a full NIZK hop with every envelope
  // reserialized in transit.
  NodeNetwork net;
  auto g0 = net.AddGroup(0, 100, 3, Variant::kNizk);
  auto batch = net.MakeBatch(g0.pub.group_pk, 4);
  auto sent = DecryptBatch(GroupSecret(g0), batch);

  NodeMsg first;
  first.type = NodeMsg::Type::kShuffleStep;
  first.gid = 0;
  first.chain_pos = 0;
  first.batch = batch;
  std::deque<Envelope> queue;
  queue.push_back(Envelope{100, std::move(first)});
  std::vector<NodeMsg> outputs;
  while (!queue.empty()) {
    Envelope env = std::move(queue.front());
    queue.pop_front();
    // Through the wire and back.
    auto decoded = DecodeNodeMsg(BytesView(EncodeNodeMsg(env.msg)));
    ASSERT_TRUE(decoded.has_value());
    if (decoded->type == NodeMsg::Type::kGroupOutput) {
      outputs.push_back(std::move(*decoded));
      continue;
    }
    ASSERT_NE(decoded->type, NodeMsg::Type::kAbort);
    size_t node_index = env.to_server - 100;
    for (Envelope& next : net.nodes[node_index]->Handle(*decoded, net.rng)) {
      queue.push_back(std::move(next));
    }
  }
  ASSERT_EQ(outputs.size(), 1u);
  EXPECT_EQ(DecryptBatch(Scalar::Zero(), outputs[0].subs[0]), sent);
}

TEST(NodeRuntime, WireRejectsMalformedNodeMsgs) {
  NodeMsg msg;
  msg.type = NodeMsg::Type::kAbort;
  msg.abort_reason = "test";
  Bytes enc = EncodeNodeMsg(msg);
  auto back = DecodeNodeMsg(BytesView(enc));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->abort_reason, "test");
  // Truncations fail.
  for (size_t len = 0; len < enc.size(); len++) {
    EXPECT_FALSE(DecodeNodeMsg(BytesView(enc.data(), len)).has_value());
  }
  // Bad type byte fails.
  Bytes bad = enc;
  bad[0] = 0x7f;
  EXPECT_FALSE(DecodeNodeMsg(BytesView(bad)).has_value());
}

}  // namespace
}  // namespace atom
