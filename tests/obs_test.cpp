// Tests for the observability plane (src/obs): histogram math and merge
// correctness, registry concurrency, snapshot codec hostility, trace JSON
// well-formedness, and the plane's core safety contract — a seeded
// pipelined round's output is byte-identical with tracing on or off.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/core/engine.h"
#include "src/crypto/elgamal.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/testing/scenario.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"

namespace atom {
namespace {

using obs::kLatencyBuckets;
using obs::Pow2Hist;

// ---------------------------------------------------------------- Pow2Hist

TEST(Pow2Hist, BucketForMatchesFloorLog2) {
  EXPECT_EQ(Pow2Hist::BucketFor(0), 0u);
  EXPECT_EQ(Pow2Hist::BucketFor(1), 0u);
  EXPECT_EQ(Pow2Hist::BucketFor(2), 1u);
  EXPECT_EQ(Pow2Hist::BucketFor(3), 1u);
  EXPECT_EQ(Pow2Hist::BucketFor(4), 2u);
  EXPECT_EQ(Pow2Hist::BucketFor(1023), 9u);
  EXPECT_EQ(Pow2Hist::BucketFor(1024), 10u);
  // The top bucket absorbs everything, including values whose log2 would
  // index past the array.
  EXPECT_EQ(Pow2Hist::BucketFor(~0ull), kLatencyBuckets - 1);
}

TEST(Pow2Hist, ObserveTracksCountAndSum) {
  Pow2Hist h;
  h.Observe(1);
  h.Observe(5);
  h.Observe(5);
  h.Observe(100);
  EXPECT_EQ(h.Total(), 4u);
  EXPECT_EQ(h.sum, 111u);
  EXPECT_EQ(h.buckets[Pow2Hist::BucketFor(5)], 2u);
}

TEST(Pow2Hist, PercentileMatchesGroundTruthUpperEdge) {
  Pow2Hist h;
  std::vector<uint64_t> values;
  std::mt19937_64 rng(7);
  for (int i = 0; i < 10000; i++) {
    uint64_t v = rng() % 100000 + 1;
    values.push_back(v);
    h.Observe(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99}) {
    const uint64_t exact = values[static_cast<size_t>(q * values.size())];
    const double est = h.Percentile(q);
    // The estimate is the upper edge 2^(b+1) of the quantile's bucket, so
    // it brackets the exact value within one power of two.
    EXPECT_GE(est, static_cast<double>(exact)) << "q=" << q;
    EXPECT_LE(est, static_cast<double>(exact) * 2.0) << "q=" << q;
  }
}

TEST(Pow2Hist, PercentileOfEmptyIsZero) {
  EXPECT_EQ(Pow2Hist{}.Percentile(0.99), 0.0);
}

TEST(Pow2Hist, MergeIsElementwiseSum) {
  Pow2Hist a, b, both;
  for (uint64_t v : {1ull, 3ull, 900ull}) {
    a.Observe(v);
    both.Observe(v);
  }
  for (uint64_t v : {2ull, 3ull, 1ull << 40}) {
    b.Observe(v);
    both.Observe(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.buckets, both.buckets);
  EXPECT_EQ(a.sum, both.sum);
  EXPECT_EQ(a.Total(), 6u);
}

// ---------------------------------------------------------------- Registry

TEST(Registry, HandlesAreStableAndNamed) {
  obs::Registry reg;
  obs::Counter* c = reg.GetCounter("test_total");
  EXPECT_EQ(c, reg.GetCounter("test_total"));
  c->Add(3);
  obs::Gauge* g = reg.GetGauge("test_depth");
  g->Set(-7);
  reg.GetHistogram("test_us")->Observe(42);

  obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("test_total"), 3u);
  EXPECT_EQ(snap.gauges.at("test_depth"), -7);
  EXPECT_EQ(snap.histograms.at("test_us").Total(), 1u);
}

// Concurrent writers against one registry, checked against the serial
// ground truth. The TSan CI job runs this same binary, so this doubles as
// the data-race gate for the sharded histogram and the CAS-max gauge.
TEST(Registry, ConcurrentWritesMatchSerialGroundTruth) {
  obs::Registry reg;
  obs::Counter* counter = reg.GetCounter("stress_total");
  obs::Gauge* peak = reg.GetGauge("stress_peak");
  obs::Histogram* hist = reg.GetHistogram("stress_us");

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; i++) {
        counter->Add(1);
        peak->UpdateMax(t * kOpsPerThread + i);
        hist->Observe(static_cast<uint64_t>(i % 1000) + 1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  Pow2Hist serial;
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kOpsPerThread; i++) {
      serial.Observe(static_cast<uint64_t>(i % 1000) + 1);
    }
  }
  obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("stress_total"),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(snap.gauges.at("stress_peak"),
            static_cast<int64_t>(kThreads) * kOpsPerThread - 1);
  EXPECT_EQ(snap.histograms.at("stress_us").buckets, serial.buckets);
  EXPECT_EQ(snap.histograms.at("stress_us").sum, serial.sum);
}

// ---------------------------------------------- snapshot codec and merge

obs::MetricsSnapshot SampleSnapshot() {
  obs::MetricsSnapshot snap;
  snap.counters["atom_a_total"] = 10;
  snap.counters["atom_b_total{peer=\"3\"}"] = 7;
  snap.gauges["atom_depth"] = -2;
  snap.gauges["atom_peak"] = 55;
  Pow2Hist h;
  h.Observe(3);
  h.Observe(4096);
  snap.histograms["atom_lat_us"] = h;
  return snap;
}

TEST(MetricsSnapshot, CodecRoundTrips) {
  obs::MetricsSnapshot snap = SampleSnapshot();
  Bytes wire = EncodeMetricsSnapshot(snap);
  auto back = obs::DecodeMetricsSnapshot(BytesView(wire));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->counters, snap.counters);
  EXPECT_EQ(back->gauges, snap.gauges);
  ASSERT_EQ(back->histograms.size(), 1u);
  EXPECT_EQ(back->histograms.at("atom_lat_us").buckets,
            snap.histograms.at("atom_lat_us").buckets);
  EXPECT_EQ(back->histograms.at("atom_lat_us").sum,
            snap.histograms.at("atom_lat_us").sum);
}

TEST(MetricsSnapshot, DecodeRejectsHostileInput) {
  Bytes wire = EncodeMetricsSnapshot(SampleSnapshot());
  // Truncations at every boundary must fail cleanly, never crash or
  // over-allocate.
  for (size_t len = 0; len < wire.size(); len++) {
    EXPECT_FALSE(
        obs::DecodeMetricsSnapshot(BytesView(wire.data(), len)).has_value())
        << "accepted a " << len << "-byte prefix";
  }
  // A count field claiming more entries than the payload can hold.
  Bytes bloated = wire;
  bloated[0] = 0xff;
  bloated[1] = 0xff;
  bloated[2] = 0xff;
  EXPECT_FALSE(obs::DecodeMetricsSnapshot(BytesView(bloated)).has_value());
  // Trailing garbage is not a valid snapshot either.
  Bytes padded = wire;
  padded.push_back(0);
  EXPECT_FALSE(obs::DecodeMetricsSnapshot(BytesView(padded)).has_value());
}

TEST(MetricsSnapshot, MergeSumsCountersAndMaxesGauges) {
  obs::MetricsSnapshot a = SampleSnapshot();
  obs::MetricsSnapshot b;
  b.counters["atom_a_total"] = 5;       // shared -> sums
  b.counters["atom_c_total"] = 1;       // new -> appears
  b.gauges["atom_peak"] = 40;           // lower -> a's max wins
  b.gauges["atom_depth"] = 9;           // higher -> b wins
  Pow2Hist h;
  h.Observe(3);
  b.histograms["atom_lat_us"] = h;

  a.MergeFrom(b);
  EXPECT_EQ(a.counters.at("atom_a_total"), 15u);
  EXPECT_EQ(a.counters.at("atom_b_total{peer=\"3\"}"), 7u);
  EXPECT_EQ(a.counters.at("atom_c_total"), 1u);
  EXPECT_EQ(a.gauges.at("atom_peak"), 55);
  EXPECT_EQ(a.gauges.at("atom_depth"), 9);
  EXPECT_EQ(a.histograms.at("atom_lat_us").Total(), 3u);
}

TEST(MetricsSnapshot, ExpositionSplicesHistogramLabels) {
  obs::MetricsSnapshot snap;
  Pow2Hist h;
  h.Observe(3);
  snap.histograms["atom_lat_us{class=\"engine\"}"] = h;
  const std::string text = snap.Exposition();
  // The le label joins the existing label set instead of nesting braces.
  EXPECT_NE(text.find("atom_lat_us_bucket{class=\"engine\",le=\"4\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("atom_lat_us_count{class=\"engine\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("atom_lat_us_sum{class=\"engine\"} 3"),
            std::string::npos)
      << text;
  EXPECT_EQ(text.find("}{"), std::string::npos) << text;
}

// ---------------------------------------------------------------- tracing

TEST(Trace, ValidatorAcceptsCollectedSpans) {
  obs::Trace::Clear();
  obs::Trace::Enable();
  {
    obs::TraceSpan outer("outer", "test", 7, "layer", 2, "gid", 3);
    obs::TraceSpan inner("inner", "test", 7);
  }
  obs::Trace::Disable();
  ASSERT_EQ(obs::Trace::EventCount(), 2u);
  const std::string json = obs::Trace::ToJson();
  std::string error;
  EXPECT_TRUE(obs::ValidateTraceJson(json, &error)) << error;
  EXPECT_NE(json.find("\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  obs::Trace::Clear();
}

TEST(Trace, ValidatorRejectsMalformedDocuments) {
  std::string error;
  EXPECT_FALSE(obs::ValidateTraceJson("", &error));
  EXPECT_FALSE(obs::ValidateTraceJson("{", &error));
  EXPECT_FALSE(obs::ValidateTraceJson("[]", &error));  // no traceEvents key
  EXPECT_FALSE(obs::ValidateTraceJson("{\"traceEvents\":{}}", &error));
  // An event missing the required phase field.
  EXPECT_FALSE(obs::ValidateTraceJson(
      "{\"traceEvents\":[{\"name\":\"x\",\"ts\":1,\"dur\":2}]}", &error));
  // Unterminated string.
  EXPECT_FALSE(obs::ValidateTraceJson(
      "{\"traceEvents\":[{\"name\":\"x]}", &error));
}

TEST(Trace, DisabledSpansCollectNothing) {
  obs::Trace::Clear();
  ASSERT_FALSE(obs::Trace::Enabled());
  {
    obs::TraceSpan span("dark", "test", 1);
  }
  EXPECT_EQ(obs::Trace::EventCount(), 0u);
}

// ------------------------------------- byte-identity with tracing armed

// Spans must be pure observation: the same seeded specs produce exactly
// the same exit ciphertexts whether the collector is armed or dark. This
// is the contract that makes it safe to run production rounds traced.
TEST(Trace, SeededPipelinedRoundsAreByteIdenticalTracedOrNot) {
  auto run = [](bool traced) {
    Rng rng(0x0b5e7ab1e);
    SquareTopology topology(3, 3);
    std::vector<std::unique_ptr<GroupRuntime>> groups;
    std::vector<const GroupRuntime*> ptrs;
    for (uint32_t g = 0; g < topology.Width(); g++) {
      groups.push_back(std::make_unique<GroupRuntime>(
          g, RunDkg(DkgParams{2, 2}, rng)));
      ptrs.push_back(groups.back().get());
    }
    if (traced) {
      obs::Trace::Clear();
      obs::Trace::Enable();
      obs::SetTimingEnabled(true);
    }
    RoundEngine engine(&ThreadPool::Shared());
    std::vector<uint64_t> tickets;
    for (int r = 0; r < 3; r++) {
      EngineRound spec;
      spec.topology = &topology;
      spec.groups = ptrs;
      spec.variant = Variant::kTrap;
      std::vector<CiphertextBatch> entry(topology.Width());
      for (uint32_t g = 0; g < topology.Width(); g++) {
        for (int i = 0; i < 2; i++) {
          Bytes payload = {static_cast<uint8_t>(r), static_cast<uint8_t>(g),
                           static_cast<uint8_t>(i)};
          entry[g].push_back({ElGamalEncrypt(
              groups[g]->pk(), *EmbedMessage(BytesView(payload)), rng)});
        }
      }
      spec.entry = std::move(entry);
      rng.Fill(spec.seed.data(), spec.seed.size());
      tickets.push_back(engine.Submit(std::move(spec)));
    }
    Bytes wire;
    for (uint64_t ticket : tickets) {
      EngineRoundResult result = engine.Wait(ticket);
      EXPECT_FALSE(result.aborted);
      for (const CiphertextBatch& batch : result.exits) {
        for (const ElGamalCiphertextVec& vec : batch) {
          Bytes encoded = EncodeCiphertextVec(vec);
          wire.insert(wire.end(), encoded.begin(), encoded.end());
        }
      }
    }
    if (traced) {
      obs::SetTimingEnabled(false);
      obs::Trace::Disable();
    }
    return wire;
  };

  const Bytes dark = run(false);
  const Bytes traced = run(true);
  ASSERT_FALSE(dark.empty());
  EXPECT_EQ(dark, traced);
  // And the traced run actually recorded the round's phases.
  EXPECT_GT(obs::Trace::EventCount(), 0u);
  std::string error;
  EXPECT_TRUE(obs::ValidateTraceJson(obs::Trace::ToJson(), &error)) << error;
  obs::Trace::Clear();
}

// --------------------------------------------- scenario report schema pin

// The scenario "transport" JSON block is now reconstructed from the
// registry-backed mesh counters; its schema is consumed by CI artifact
// tooling and must not drift.
TEST(ScenarioReportJson, TransportSchemaIsPinned) {
  ScenarioReport report;
  report.scenario = "pin";
  report.transport_bytes_sent = 1;
  report.transport_frames_sent = 2;
  report.transport_bundles_sent = 3;
  report.transport_bundle_fill = 1.5;
  report.transport_queue_depth_peak = 4;
  report.transport_send_queue_drops = 5;
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"transport\":{\"bytes_sent\":1,"
                      "\"frames_sent\":2,\"bundles_sent\":3,"
                      "\"bundle_fill\":1.50,\"queue_depth_peak\":4,"
                      "\"send_queue_drops\":5}"),
            std::string::npos)
      << json;
}

}  // namespace
}  // namespace atom
