// Tests for the P-256 group: field arithmetic, curve known-answer vectors,
// group-law properties, MSM, encoding, hash-to-point, message embedding.
#include <gtest/gtest.h>

#include <vector>

#include "src/crypto/mont.h"
#include "src/crypto/p256.h"
#include "src/util/hex.h"
#include "src/util/rng.h"

namespace atom {
namespace {

U256 U256FromHex(std::string_view h) {
  auto bytes = HexDecode(h);
  EXPECT_TRUE(bytes.has_value() && bytes->size() == 32);
  return U256::FromBytesBe(BytesView(*bytes));
}

// ------------------------------------------------------------- U256/Mont --

TEST(U256, AddSubInverse) {
  Rng rng(1u);
  for (int i = 0; i < 100; i++) {
    Bytes ab = rng.NextBytes(32), bb = rng.NextBytes(32);
    U256 a = U256::FromBytesBe(BytesView(ab));
    U256 b = U256::FromBytesBe(BytesView(bb));
    U256 sum, back;
    uint64_t carry = U256Add(&sum, a, b);
    uint64_t borrow = U256Sub(&back, sum, b);
    EXPECT_EQ(carry, borrow);  // overflow on add <=> borrow on the way back
    EXPECT_EQ(back, a);
  }
}

TEST(U256, BytesRoundTrip) {
  Rng rng(2u);
  for (int i = 0; i < 50; i++) {
    Bytes raw = rng.NextBytes(32);
    U256 v = U256::FromBytesBe(BytesView(raw));
    auto back = v.ToBytesBe();
    EXPECT_EQ(Bytes(back.begin(), back.end()), raw);
  }
}

TEST(U256, Comparisons) {
  U256 a = U256::FromU64(5), b = U256::FromU64(6);
  EXPECT_TRUE(U256Less(a, b));
  EXPECT_FALSE(U256Less(b, a));
  EXPECT_FALSE(U256Less(a, a));
  U256 big = U256::FromLimbs(0, 0, 0, 1);
  EXPECT_TRUE(U256Less(b, big));
}

TEST(Mont, MulMatchesWideMultiply) {
  // Montgomery-multiply small numbers where the plain product is known.
  const Mont& fp = FieldP();
  U256 a = fp.ToMont(U256::FromU64(123456789));
  U256 b = fp.ToMont(U256::FromU64(987654321));
  U256 prod = fp.FromMont(fp.Mul(a, b));
  EXPECT_EQ(prod, U256::FromU64(123456789ull * 987654321ull));
}

TEST(Mont, ToFromMontRoundTrip) {
  Rng rng(3u);
  for (const Mont* field : {&FieldP(), &FieldN()}) {
    for (int i = 0; i < 50; i++) {
      Bytes raw = rng.NextBytes(32);
      U256 v = field->Reduce(U256::FromBytesBe(BytesView(raw)));
      EXPECT_EQ(field->FromMont(field->ToMont(v)), v);
    }
  }
}

TEST(Mont, InverseProperty) {
  Rng rng(4u);
  for (const Mont* field : {&FieldP(), &FieldN()}) {
    for (int i = 0; i < 20; i++) {
      Bytes raw = rng.NextBytes(32);
      U256 v = field->Reduce(U256::FromBytesBe(BytesView(raw)));
      if (v.IsZero()) {
        continue;
      }
      U256 mv = field->ToMont(v);
      U256 inv = field->Inv(mv);
      EXPECT_EQ(field->Mul(mv, inv), field->one());
    }
  }
}

TEST(Mont, AddSubProperties) {
  const Mont& f = FieldN();
  Rng rng(5u);
  for (int i = 0; i < 50; i++) {
    Bytes ar = rng.NextBytes(32), br = rng.NextBytes(32);
    U256 a = f.Reduce(U256::FromBytesBe(BytesView(ar)));
    U256 b = f.Reduce(U256::FromBytesBe(BytesView(br)));
    EXPECT_EQ(f.Sub(f.Add(a, b), b), a);
    EXPECT_EQ(f.Add(a, f.Neg(a)), U256::Zero());
  }
}

TEST(Mont, PowMatchesRepeatedMul) {
  const Mont& f = FieldP();
  U256 base = f.ToMont(U256::FromU64(7));
  U256 expect = f.one();
  for (int e = 0; e < 20; e++) {
    EXPECT_EQ(f.Pow(base, U256::FromU64(static_cast<uint64_t>(e))), expect);
    expect = f.Mul(expect, base);
  }
}

// ----------------------------------------------------------------- Curve --

struct MulVector {
  uint64_t k_low;            // small scalars used directly
  std::string_view k_hex;    // or a full 32-byte scalar (if nonempty)
  std::string_view x_hex;
  std::string_view y_hex;
};

TEST(P256, KnownScalarMultiples) {
  // Generated with the pyca/cryptography P-256 implementation.
  const MulVector vectors[] = {
      {1, "",
       "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296",
       "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5"},
      {2, "",
       "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978",
       "07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1"},
      {3, "",
       "5ecbe4d1a6330a44c8f7ef951d4bf165e6c6b721efada985fb41661bc6e7fd6c",
       "8734640c4998ff7e374b06ce1a64a2ecd82ab036384fb83d9a79b127a27d5032"},
      {0xdeadbeef, "",
       "b487d183dc4806058eb31a29bedefd7bcca987b77a381a3684871d8449c18394",
       "2a122cc711a80453678c3032de4b6fff2c86342e82d1e7adb617c4165c43ce5e"},
      {0,
       "123456789abcdef0fedcba9876543210123456789abcdef0fedcba9876543210",
       "5c0c78732173106ec12a7572b3d1fbc511beb5844dfbb26b3bb5f6f3fc9bc432",
       "186f2477695716542cbc68e786e7b658b05e8403fe4aa5db7673bf8688bc7c9f"},
  };
  for (const auto& vec : vectors) {
    Scalar k;
    if (vec.k_hex.empty()) {
      k = Scalar::FromU64(vec.k_low);
    } else {
      auto kb = HexDecode(vec.k_hex);
      ASSERT_TRUE(kb.has_value());
      k = Scalar::FromBytesReduced(BytesView(*kb));
    }
    for (Point p : {Point::BaseMul(k), Point::Generator().Mul(k)}) {
      U256 ax, ay;
      p.ToAffine(&ax, &ay);
      EXPECT_EQ(ax, U256FromHex(vec.x_hex));
      EXPECT_EQ(ay, U256FromHex(vec.y_hex));
    }
  }
}

TEST(P256, GeneratorOnCurve) {
  EXPECT_TRUE(Point::Generator().IsOnCurve());
}

TEST(P256, OrderTimesGeneratorIsInfinity) {
  // n*G == infinity, via (n-1)*G + G.
  Scalar n_minus_1 = Scalar::Zero() - Scalar::One();
  Point p = Point::BaseMul(n_minus_1) + Point::Generator();
  EXPECT_TRUE(p.IsInfinity());
}

TEST(P256, AddCommutesAndAssociates) {
  Rng rng(10u);
  Point a = Point::BaseMul(Scalar::Random(rng));
  Point b = Point::BaseMul(Scalar::Random(rng));
  Point c = Point::BaseMul(Scalar::Random(rng));
  EXPECT_EQ(a + b, b + a);
  EXPECT_EQ((a + b) + c, a + (b + c));
}

TEST(P256, DoubleMatchesAdd) {
  Rng rng(11u);
  for (int i = 0; i < 10; i++) {
    Point a = Point::BaseMul(Scalar::Random(rng));
    EXPECT_EQ(a.Double(), a + a);
  }
}

TEST(P256, NegationGivesInfinity) {
  Rng rng(12u);
  Point a = Point::BaseMul(Scalar::Random(rng));
  EXPECT_TRUE((a + a.Neg()).IsInfinity());
}

TEST(P256, InfinityIsNeutral) {
  Rng rng(13u);
  Point a = Point::BaseMul(Scalar::Random(rng));
  EXPECT_EQ(a + Point::Infinity(), a);
  EXPECT_EQ(Point::Infinity() + a, a);
  EXPECT_TRUE((Point::Infinity() + Point::Infinity()).IsInfinity());
}

TEST(P256, MulIsHomomorphic) {
  // (j+k)*P == j*P + k*P.
  Rng rng(14u);
  Point p = Point::BaseMul(Scalar::Random(rng));
  for (int i = 0; i < 5; i++) {
    Scalar j = Scalar::Random(rng), k = Scalar::Random(rng);
    EXPECT_EQ(p.Mul(j + k), p.Mul(j) + p.Mul(k));
  }
}

TEST(P256, MulByZeroAndOne) {
  Rng rng(15u);
  Point p = Point::BaseMul(Scalar::Random(rng));
  EXPECT_TRUE(p.Mul(Scalar::Zero()).IsInfinity());
  EXPECT_EQ(p.Mul(Scalar::One()), p);
}

TEST(P256, EncodeDecodeRoundTrip) {
  Rng rng(16u);
  for (int i = 0; i < 20; i++) {
    Point p = Point::BaseMul(Scalar::Random(rng));
    Bytes enc = p.Encode();
    ASSERT_EQ(enc.size(), Point::kEncodedSize);
    auto back = Point::Decode(BytesView(enc));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
}

TEST(P256, EncodeDecodeInfinity) {
  Bytes enc = Point::Infinity().Encode();
  auto back = Point::Decode(BytesView(enc));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->IsInfinity());
}

TEST(P256, DecodeRejectsGarbage) {
  Bytes bad(Point::kEncodedSize, 0xff);
  bad[0] = 0x05;  // invalid prefix
  EXPECT_FALSE(Point::Decode(BytesView(bad)).has_value());
  EXPECT_FALSE(Point::Decode(BytesView(bad.data(), 10)).has_value());
  // x >= p with a valid prefix.
  Bytes big(Point::kEncodedSize, 0xff);
  big[0] = 0x02;
  EXPECT_FALSE(Point::Decode(BytesView(big)).has_value());
}

TEST(P256, DecodeRejectsNonResidueX) {
  // Find an x that is not on the curve: x = 5 happens to work for P-256
  // (5^3 - 3*5 + b is a non-residue); if not, scan a few small values.
  for (uint64_t x = 1; x < 50; x++) {
    Bytes enc(Point::kEncodedSize, 0);
    enc[0] = 0x02;
    enc[32] = static_cast<uint8_t>(x);
    if (!Point::Decode(BytesView(enc)).has_value()) {
      return;  // found a rejected x, as expected
    }
  }
  FAIL() << "every small x decoded; decompression validity check is broken";
}

TEST(P256, MsmMatchesNaive) {
  Rng rng(17u);
  for (size_t n : {1u, 2u, 7u, 8u, 33u, 100u}) {
    std::vector<Point> points;
    std::vector<Scalar> scalars;
    Point expect = Point::Infinity();
    for (size_t i = 0; i < n; i++) {
      Point p = Point::BaseMul(Scalar::Random(rng));
      Scalar s = Scalar::Random(rng);
      expect = expect + p.Mul(s);
      points.push_back(p);
      scalars.push_back(s);
    }
    EXPECT_EQ(MultiScalarMul(points, scalars), expect) << "n=" << n;
  }
}

TEST(P256, MsmHandlesZeroScalars) {
  Rng rng(18u);
  std::vector<Point> points;
  std::vector<Scalar> scalars;
  for (int i = 0; i < 20; i++) {
    points.push_back(Point::BaseMul(Scalar::Random(rng)));
    scalars.push_back(Scalar::Zero());
  }
  EXPECT_TRUE(MultiScalarMul(points, scalars).IsInfinity());
}

TEST(P256, HashToPointDeterministicAndDistinct) {
  Point a1 = HashToPoint(BytesView(ToBytes("label-a")));
  Point a2 = HashToPoint(BytesView(ToBytes("label-a")));
  Point b = HashToPoint(BytesView(ToBytes("label-b")));
  EXPECT_EQ(a1, a2);
  EXPECT_FALSE(a1 == b);
  EXPECT_TRUE(a1.IsOnCurve());
  EXPECT_TRUE(b.IsOnCurve());
}

TEST(P256, EmbedExtractRoundTrip) {
  Rng rng(19u);
  for (size_t len : {0u, 1u, 10u, 29u, 30u}) {
    Bytes msg = rng.NextBytes(len);
    auto p = EmbedMessage(BytesView(msg));
    ASSERT_TRUE(p.has_value()) << "len=" << len;
    EXPECT_TRUE(p->IsOnCurve());
    auto back = ExtractMessage(*p);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, msg);
  }
}

TEST(P256, EmbedRejectsOversize) {
  Bytes msg(kEmbedCapacity + 1, 0);
  EXPECT_FALSE(EmbedMessage(BytesView(msg)).has_value());
}

TEST(P256, EmbedSurvivesGroupOperations) {
  // Embedding must survive the ElGamal path: multiply by blinding factors
  // and divide back out.
  Rng rng(20u);
  Bytes msg = ToBytes("trap:gid=7");
  auto m = EmbedMessage(BytesView(msg));
  ASSERT_TRUE(m.has_value());
  Point blind = Point::BaseMul(Scalar::Random(rng));
  Point blinded = *m + blind;
  Point recovered = blinded - blind;
  EXPECT_EQ(recovered, *m);
  EXPECT_EQ(*ExtractMessage(recovered), msg);
}

// ---------------------------------------------------------------- Scalar --

TEST(ScalarOps, FieldAxioms) {
  Rng rng(21u);
  for (int i = 0; i < 20; i++) {
    Scalar a = Scalar::Random(rng), b = Scalar::Random(rng);
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) - b, a);
    if (!a.IsZero()) {
      EXPECT_EQ(a * a.Inv(), Scalar::One());
    }
    EXPECT_EQ(a + a.Neg(), Scalar::Zero());
  }
}

TEST(ScalarOps, BytesRoundTrip) {
  Rng rng(22u);
  for (int i = 0; i < 20; i++) {
    Scalar a = Scalar::Random(rng);
    auto bytes = a.ToBytes();
    auto back = Scalar::FromBytes(BytesView(bytes.data(), bytes.size()));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, a);
  }
}

TEST(ScalarOps, FromBytesRejectsOverflow) {
  Bytes all_ff(32, 0xff);  // 2^256-1 > n
  EXPECT_FALSE(Scalar::FromBytes(BytesView(all_ff)).has_value());
  auto order_bytes = P256Order().ToBytesBe();
  EXPECT_FALSE(
      Scalar::FromBytes(BytesView(order_bytes.data(), 32)).has_value());
}

TEST(ScalarOps, FromBytesReducedWraps) {
  // n + 5 should reduce to 5.
  U256 n_plus_5;
  U256Add(&n_plus_5, P256Order(), U256::FromU64(5));
  auto bytes = n_plus_5.ToBytesBe();
  Scalar s = Scalar::FromBytesReduced(BytesView(bytes.data(), 32));
  EXPECT_EQ(s, Scalar::FromU64(5));
}

TEST(ScalarOps, RandomIsNonDegenerate) {
  Rng rng(23u);
  Scalar a = Scalar::Random(rng), b = Scalar::Random(rng);
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a.IsZero());
}

// --------------------------------------------------------- fixed-base table

TEST(FixedBase, TableMatchesGenericMul) {
  Rng rng(41u);
  Point base = Point::BaseMul(Scalar::Random(rng));
  FixedBaseTable table(base);
  EXPECT_EQ(table.base(), base);
  for (int i = 0; i < 32; i++) {
    Scalar k = Scalar::Random(rng);
    EXPECT_EQ(table.Mul(k), base.Mul(k));
  }
}

TEST(FixedBase, TableEdgeScalars) {
  Rng rng(42u);
  Point base = Point::BaseMul(Scalar::Random(rng));
  FixedBaseTable table(base);
  EXPECT_TRUE(table.Mul(Scalar::Zero()).IsInfinity());
  EXPECT_EQ(table.Mul(Scalar::One()), base);
  // n - 1 (all windows saturated on the high limbs): -P.
  Scalar n_minus_1 = Scalar::Zero() - Scalar::One();
  EXPECT_EQ(table.Mul(n_minus_1), base.Mul(n_minus_1));
  EXPECT_TRUE((table.Mul(n_minus_1) + base).IsInfinity());
}

TEST(FixedBase, GeneratorTableIsBaseMul) {
  Rng rng(43u);
  for (int i = 0; i < 8; i++) {
    Scalar k = Scalar::Random(rng);
    EXPECT_EQ(Point::GeneratorTable().Mul(k), Point::Generator().Mul(k));
    EXPECT_EQ(Point::BaseMul(k), Point::Generator().Mul(k));
  }
}

TEST(FixedBase, IdentityBaseTableYieldsInfinity) {
  FixedBaseTable table(Point::Infinity());
  Rng rng(44u);
  EXPECT_TRUE(table.Mul(Scalar::Random(rng)).IsInfinity());
  EXPECT_TRUE(table.Mul(Scalar::Zero()).IsInfinity());
}

TEST(BatchAffine, MatchesPerPointToAffine) {
  Rng rng(45u);
  std::vector<Point> points;
  for (int i = 0; i < 17; i++) {
    // Mix of fresh multiples and sums so z coordinates are nontrivial.
    points.push_back(Point::BaseMul(Scalar::Random(rng)) +
                     Point::BaseMul(Scalar::Random(rng)));
  }
  auto affine = Point::BatchToAffine(points);
  ASSERT_EQ(affine.size(), points.size());
  for (size_t i = 0; i < points.size(); i++) {
    EXPECT_FALSE(affine[i].infinity);
    U256 x, y;
    points[i].ToAffine(&x, &y);
    EXPECT_EQ(affine[i].x, x);
    EXPECT_EQ(affine[i].y, y);
  }
}

TEST(BatchAffine, HandlesIdentityInBatch) {
  Rng rng(46u);
  std::vector<Point> points = {Point::BaseMul(Scalar::Random(rng)),
                               Point::Infinity(),
                               Point::BaseMul(Scalar::Random(rng)),
                               Point::Infinity()};
  auto affine = Point::BatchToAffine(points);
  ASSERT_EQ(affine.size(), 4u);
  EXPECT_FALSE(affine[0].infinity);
  EXPECT_TRUE(affine[1].infinity);
  EXPECT_FALSE(affine[2].infinity);
  EXPECT_TRUE(affine[3].infinity);
  U256 x, y;
  points[2].ToAffine(&x, &y);
  EXPECT_EQ(affine[2].x, x);
  EXPECT_EQ(affine[2].y, y);
  // All-identity and empty batches are fine too.
  EXPECT_TRUE(Point::BatchToAffine(std::vector<Point>{}).empty());
  auto all_inf = Point::BatchToAffine(
      std::vector<Point>{Point::Infinity(), Point::Infinity()});
  EXPECT_TRUE(all_inf[0].infinity && all_inf[1].infinity);
}

TEST(BatchAffine, EncodePointsMatchesLoopedEncode) {
  Rng rng(47u);
  std::vector<Point> points;
  for (int i = 0; i < 9; i++) {
    points.push_back(Point::BaseMul(Scalar::Random(rng)));
  }
  points.insert(points.begin() + 3, Point::Infinity());
  Bytes batch = EncodePoints(points);
  ASSERT_EQ(batch.size(), points.size() * Point::kEncodedSize);
  for (size_t i = 0; i < points.size(); i++) {
    Bytes one = points[i].Encode();
    EXPECT_TRUE(std::equal(one.begin(), one.end(),
                           batch.begin() +
                               static_cast<ptrdiff_t>(i *
                                                      Point::kEncodedSize)));
  }
  EXPECT_TRUE(EncodePoints(std::vector<Point>{}).empty());
}

TEST(Mont, BatchInvMatchesInv) {
  Rng rng(48u);
  const Mont& fp = FieldP();
  std::vector<U256> values;
  for (int i = 0; i < 13; i++) {
    values.push_back(fp.ToMont(Scalar::Random(rng).PlainValue()));
  }
  std::vector<U256> batch = values;
  fp.BatchInv(batch);
  for (size_t i = 0; i < values.size(); i++) {
    EXPECT_EQ(batch[i], fp.Inv(values[i]));
  }
  // Single-element and empty batches.
  std::vector<U256> one = {values[0]};
  fp.BatchInv(one);
  EXPECT_EQ(one[0], fp.Inv(values[0]));
  std::vector<U256> none;
  fp.BatchInv(none);
}

}  // namespace
}  // namespace atom
