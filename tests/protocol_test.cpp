// Tests for the deployment-infrastructure pieces: Schnorr identities, the
// directory authority (registration, beacon chain, round descriptors), and
// the client wire formats.
#include <gtest/gtest.h>

#include "src/core/directory.h"
#include "src/core/wire.h"
#include "src/util/serde.h"
#include "src/util/rng.h"

namespace atom {
namespace {

// ---------------------------------------------------------------- schnorr --

TEST(Schnorr, SignVerifyRoundTrip) {
  Rng rng(1100u);
  auto kp = SchnorrKeyGen(rng);
  Bytes msg = ToBytes("server registration payload");
  auto sig = SchnorrSign(kp.sk, kp.pk, BytesView(msg), rng);
  EXPECT_TRUE(SchnorrVerify(kp.pk, BytesView(msg), sig));
}

TEST(Schnorr, RejectsWrongMessage) {
  Rng rng(1101u);
  auto kp = SchnorrKeyGen(rng);
  auto sig = SchnorrSign(kp.sk, kp.pk, BytesView(ToBytes("real")), rng);
  EXPECT_FALSE(SchnorrVerify(kp.pk, BytesView(ToBytes("fake")), sig));
}

TEST(Schnorr, RejectsWrongKey) {
  Rng rng(1102u);
  auto kp = SchnorrKeyGen(rng);
  auto other = SchnorrKeyGen(rng);
  Bytes msg = ToBytes("msg");
  auto sig = SchnorrSign(kp.sk, kp.pk, BytesView(msg), rng);
  EXPECT_FALSE(SchnorrVerify(other.pk, BytesView(msg), sig));
}

TEST(Schnorr, RejectsTamperedSignature) {
  Rng rng(1103u);
  auto kp = SchnorrKeyGen(rng);
  Bytes msg = ToBytes("msg");
  auto sig = SchnorrSign(kp.sk, kp.pk, BytesView(msg), rng);
  auto bad = sig;
  bad.response = bad.response + Scalar::One();
  EXPECT_FALSE(SchnorrVerify(kp.pk, BytesView(msg), bad));
}

TEST(Schnorr, EncodeDecodeRoundTrip) {
  Rng rng(1104u);
  auto kp = SchnorrKeyGen(rng);
  Bytes msg = ToBytes("encode me");
  auto sig = SchnorrSign(kp.sk, kp.pk, BytesView(msg), rng);
  Bytes enc = sig.Encode();
  EXPECT_EQ(enc.size(), SchnorrSignature::kEncodedSize);
  auto back = SchnorrSignature::Decode(BytesView(enc));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(SchnorrVerify(kp.pk, BytesView(msg), *back));
  enc.pop_back();
  EXPECT_FALSE(SchnorrSignature::Decode(BytesView(enc)).has_value());
}

TEST(SchnorrBatch, AcceptsAllValidAndEmptyAndSingle) {
  Rng rng(1105u);
  std::vector<SchnorrKeypair> kps;
  std::vector<Point> pks;
  std::vector<Bytes> msgs;
  std::vector<BytesView> views;
  std::vector<SchnorrSignature> sigs;
  for (int i = 0; i < 12; i++) {
    kps.push_back(SchnorrKeyGen(rng));
    pks.push_back(kps.back().pk);
    msgs.push_back(ToBytes("batch message " + std::to_string(i)));
  }
  for (int i = 0; i < 12; i++) {
    views.push_back(BytesView(msgs[i]));
    sigs.push_back(SchnorrSign(kps[i].sk, kps[i].pk, views.back(), rng));
  }
  EXPECT_TRUE(SchnorrVerifyBatch(pks, views, sigs));
  // Empty batch: vacuously true.
  EXPECT_TRUE(SchnorrVerifyBatch({}, {}, {}));
  // n == 1 falls through to the single verifier.
  EXPECT_TRUE(SchnorrVerifyBatch(std::span(pks.data(), 1),
                                 std::span(views.data(), 1),
                                 std::span(sigs.data(), 1)));
  // Mismatched span sizes reject outright.
  EXPECT_FALSE(SchnorrVerifyBatch(pks, views, std::span(sigs.data(), 11)));
}

TEST(SchnorrBatch, RejectsAnySingleBadSignature) {
  Rng rng(1106u);
  constexpr int kN = 8;
  std::vector<SchnorrKeypair> kps;
  std::vector<Point> pks;
  std::vector<Bytes> msgs;
  std::vector<BytesView> views;
  std::vector<SchnorrSignature> sigs;
  for (int i = 0; i < kN; i++) {
    kps.push_back(SchnorrKeyGen(rng));
    pks.push_back(kps.back().pk);
    msgs.push_back(ToBytes("victim " + std::to_string(i)));
  }
  for (int i = 0; i < kN; i++) {
    views.push_back(BytesView(msgs[i]));
    sigs.push_back(SchnorrSign(kps[i].sk, kps[i].pk, views.back(), rng));
  }
  ASSERT_TRUE(SchnorrVerifyBatch(pks, views, sigs));
  // Corrupting any one signature (response or commitment) sinks the batch.
  for (int i = 0; i < kN; i++) {
    auto bad = sigs;
    bad[i].response = bad[i].response + Scalar::One();
    EXPECT_FALSE(SchnorrVerifyBatch(pks, views, bad)) << "response " << i;
    bad = sigs;
    bad[i].commit = bad[i].commit + Point::Generator();
    EXPECT_FALSE(SchnorrVerifyBatch(pks, views, bad)) << "commit " << i;
  }
  // A signature transplanted onto another message also sinks it.
  auto swapped = sigs;
  std::swap(swapped[2], swapped[5]);
  EXPECT_FALSE(SchnorrVerifyBatch(pks, views, swapped));
}

// -------------------------------------------------------------- directory --

TEST(DirectoryTest, RegistrationLifecycle) {
  Rng rng(1110u);
  Directory directory(ToBytes("genesis"));
  auto identity = SchnorrKeyGen(rng);
  auto reg = MakeServerRegistration(7, /*cluster=*/2, identity, rng);
  EXPECT_TRUE(directory.Register(reg));
  EXPECT_EQ(directory.NumServers(), 1u);
  ASSERT_NE(directory.FindServer(7), nullptr);
  EXPECT_EQ(directory.FindServer(7)->cluster, 2u);
  EXPECT_EQ(directory.FindServer(8), nullptr);
}

TEST(DirectoryTest, RejectsBadSignature) {
  Rng rng(1111u);
  Directory directory(ToBytes("genesis"));
  auto identity = SchnorrKeyGen(rng);
  auto other = SchnorrKeyGen(rng);
  auto reg = MakeServerRegistration(1, 0, identity, rng);
  reg.record.identity_pk = other.pk;  // claim someone else's key
  EXPECT_FALSE(directory.Register(reg));
  EXPECT_EQ(directory.NumServers(), 0u);
}

TEST(DirectoryTest, RejectsDuplicateId) {
  Rng rng(1112u);
  Directory directory(ToBytes("genesis"));
  auto a = SchnorrKeyGen(rng), b = SchnorrKeyGen(rng);
  EXPECT_TRUE(directory.Register(MakeServerRegistration(3, 0, a, rng)));
  EXPECT_FALSE(directory.Register(MakeServerRegistration(3, 1, b, rng)));
}

TEST(DirectoryTest, BeaconDeterministicPerRound) {
  Directory d1(ToBytes("genesis"));
  Directory d2(ToBytes("genesis"));
  Directory d3(ToBytes("other-genesis"));
  EXPECT_EQ(d1.BeaconFor(5), d2.BeaconFor(5));
  EXPECT_NE(d1.BeaconFor(5), d1.BeaconFor(6));
  EXPECT_NE(d1.BeaconFor(5), d3.BeaconFor(5));
}

TEST(DirectoryTest, RoundDescriptorIsConsistent) {
  Rng rng(1113u);
  Directory directory(ToBytes("genesis"));
  for (uint32_t i = 0; i < 8; i++) {
    auto identity = SchnorrKeyGen(rng);
    ASSERT_TRUE(directory.Register(
        MakeServerRegistration(i, i % 4, identity, rng)));
  }
  AtomParams params;
  params.num_servers = 8;
  params.num_groups = 4;
  params.group_size = 3;
  auto descriptor = directory.DescribeRound(1, params);
  EXPECT_EQ(descriptor.layout.groups.size(), 4u);
  for (const auto& group : descriptor.layout.groups) {
    EXPECT_EQ(group.size(), 3u);
  }
  // Same round -> same layout; different round -> (almost surely) not.
  auto again = directory.DescribeRound(1, params);
  EXPECT_EQ(descriptor.layout.groups, again.layout.groups);
  auto next = directory.DescribeRound(2, params);
  EXPECT_NE(descriptor.beacon, next.beacon);
}

TEST(DirectoryTest, ServerRecordEncodeDecode) {
  Rng rng(1114u);
  auto identity = SchnorrKeyGen(rng);
  ServerRecord record{42, identity.pk, 3};
  auto back = ServerRecord::Decode(BytesView(record.Encode()));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->id, 42u);
  EXPECT_EQ(back->cluster, 3u);
  EXPECT_EQ(back->identity_pk, identity.pk);
  Bytes junk(10, 0xee);
  EXPECT_FALSE(ServerRecord::Decode(BytesView(junk)).has_value());
}

// ------------------------------------------------------------------- wire --

struct WireFixture {
  Rng rng{uint64_t{1120}};
  ElGamalKeypair group = ElGamalKeyGen(rng);
  ElGamalKeypair trustee = ElGamalKeyGen(rng);
  MessageLayout nizk_layout = LayoutFor(Variant::kNizk, 64);
  MessageLayout trap_layout = LayoutFor(Variant::kTrap, 64);
};

TEST(Wire, NizkSubmissionRoundTrip) {
  WireFixture f;
  auto sub = MakeNizkSubmission(f.group.pk, 5, BytesView(ToBytes("post")),
                                f.nizk_layout, f.rng);
  sub.client_id = 0x0123456789abcdefULL;
  Bytes enc = EncodeNizkSubmission(sub);
  auto back = DecodeNizkSubmission(BytesView(enc));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->entry_gid, 5u);
  EXPECT_EQ(back->client_id, sub.client_id);
  EXPECT_TRUE(VerifyNizkSubmission(f.group.pk, *back, f.nizk_layout));
}

TEST(Wire, TrapSubmissionRoundTrip) {
  WireFixture f;
  auto sub = MakeTrapSubmission(f.group.pk, 2, f.trustee.pk,
                                BytesView(ToBytes("msg")), f.trap_layout,
                                f.rng);
  sub.client_id = 77;
  Bytes enc = EncodeTrapSubmission(sub);
  auto back = DecodeTrapSubmission(BytesView(enc));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->trap_commitment, sub.trap_commitment);
  EXPECT_EQ(back->client_id, 77u);
  EXPECT_TRUE(VerifyTrapSubmission(f.group.pk, *back, f.trap_layout));
}

TEST(Wire, RejectsTruncationAtEveryBoundary) {
  WireFixture f;
  auto sub = MakeTrapSubmission(f.group.pk, 2, f.trustee.pk,
                                BytesView(ToBytes("msg")), f.trap_layout,
                                f.rng);
  Bytes enc = EncodeTrapSubmission(sub);
  // Any strict prefix must fail to decode (sampled for speed).
  for (size_t len = 0; len < enc.size(); len += 97) {
    EXPECT_FALSE(
        DecodeTrapSubmission(BytesView(enc.data(), len)).has_value())
        << "prefix of length " << len << " decoded";
  }
  // Trailing garbage must fail too.
  Bytes extended = enc;
  extended.push_back(0);
  EXPECT_FALSE(DecodeTrapSubmission(BytesView(extended)).has_value());
}

TEST(Wire, RejectsCorruptPointEncodings) {
  WireFixture f;
  auto sub = MakeNizkSubmission(f.group.pk, 0, BytesView(ToBytes("x")),
                                f.nizk_layout, f.rng);
  Bytes enc = EncodeNizkSubmission(sub);
  // Smash a ciphertext point's prefix byte to an invalid value.
  enc[4] = 0x09;
  EXPECT_FALSE(DecodeNizkSubmission(BytesView(enc)).has_value());
}

TEST(Wire, DkgDealingRoundTrip) {
  Rng rng(1130u);
  DkgParams params{5, 4};
  DkgDealing dealing = MakeDealing(3, params, rng);
  Bytes enc = EncodeDkgDealing(dealing);
  auto back = DecodeDkgDealing(BytesView(enc));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->dealer, 3u);
  ASSERT_EQ(back->commitments.size(), dealing.commitments.size());
  for (size_t i = 0; i < dealing.commitments.size(); i++) {
    EXPECT_EQ(back->commitments[i], dealing.commitments[i]);
  }
  // The decoded shares still verify against the decoded commitments.
  for (const Share& share : back->shares) {
    EXPECT_TRUE(FeldmanVerifyShare(back->commitments, share));
  }
  // Truncation fails.
  EXPECT_FALSE(
      DecodeDkgDealing(BytesView(enc.data(), enc.size() - 1)).has_value());
}

TEST(Wire, DkgComplaintRoundTrip) {
  DkgComplaint complaint{7, 2};
  auto back = DecodeDkgComplaint(BytesView(EncodeDkgComplaint(complaint)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->accuser, 7u);
  EXPECT_EQ(back->dealer, 2u);
  Bytes junk(3, 0);
  EXPECT_FALSE(DecodeDkgComplaint(BytesView(junk)).has_value());
}

TEST(Wire, RejectsAbsurdCounts) {
  ByteWriter w;
  w.U32(0);           // gid
  w.U32(0xffffffff);  // claimed ciphertext count
  EXPECT_FALSE(DecodeNizkSubmission(BytesView(w.bytes())).has_value());
}

}  // namespace
}  // namespace atom
