// Tests for the epoll reactor ingress tier (src/net/reactor.h): the
// reactor gateway serves the exact SubmissionGateway protocol (a seeded
// round driven through TCP ClientSessions is byte-identical to its
// in-process twin), verdict semantics match the blocking backend
// (kClosed / kForeignId / kRejected), slowloris-style stalled handshakes
// and idle sessions are reaped by deadline, FaultPlan's gateway churn
// injection point works mid-stream, Stop() under connect/submit load is
// deterministic, and a GatewayFleet shards admission per entry group
// with FleetClient routing each message to its group's gateway.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "src/core/directory.h"
#include "src/core/round.h"
#include "src/core/wire.h"
#include "src/net/client_session.h"
#include "src/net/reactor.h"
#include "src/net/registry.h"
#include "src/util/rng.h"

namespace atom {
namespace {

using namespace std::chrono_literals;

bool WaitUntil(const std::function<bool()>& pred,
               std::chrono::milliseconds timeout = 5s) {
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) {
      return true;
    }
    std::this_thread::sleep_for(10ms);
  }
  return pred();
}

// Twin-buildable ingress deployment over the backend factory: same shape
// as net_test's IngressFixture, but the gateway is whichever backend the
// test asks for — the point being that every test here would pass
// verbatim against SubmissionGateway too.
struct ReactorFixture {
  RoundConfig config;
  Rng round_rng;
  std::unique_ptr<Round> round;
  Directory directory{ToBytes("reactor-genesis")};
  ClientRegistry registry;
  Rng key_rng{uint64_t{0x4eac7}};
  KemKeypair gateway_key;
  std::map<uint64_t, KemKeypair> client_keys;
  std::unique_ptr<ClientGateway> gateway;

  explicit ReactorFixture(Variant variant, uint64_t seed = 0x4eac7)
      : round_rng(seed) {
    config.params.variant = variant;
    config.params.num_servers = 4;
    config.params.num_groups = 2;
    config.params.group_size = 2;
    config.params.honest_needed = 1;
    config.params.iterations = 2;
    config.params.message_len = 32;
    config.beacon = ToBytes("reactor-epoch");
    config.workers = 1;
    round = std::make_unique<Round>(config, round_rng);
    gateway_key = KemKeyGen(key_rng);
  }

  ~ReactorFixture() {
    if (gateway != nullptr) {
      gateway->Stop();
    }
  }

  void AddClient(uint64_t id) {
    SchnorrKeypair kp = SchnorrKeyGen(key_rng);
    client_keys[id] = KemKeypair{kp.sk, kp.pk};
    EXPECT_TRUE(
        directory.RegisterClient(MakeClientRegistration(id, kp, key_rng)));
  }

  bool StartGateway(GatewayConfig cfg = {},
                    GatewayBackend backend = GatewayBackend::kReactor,
                    std::shared_ptr<FaultPlan> plan = nullptr) {
    registry.SeedFromDirectory(directory);
    gateway = MakeClientGateway(backend, round.get(), &registry,
                                gateway_key, cfg);
    if (plan != nullptr) {
      gateway->SetFaultPlan(std::move(plan));
    }
    if (!gateway->Listen(0)) {
      return false;
    }
    gateway->Start();
    return true;
  }

  std::unique_ptr<ClientSession> Connect(uint64_t id) {
    return ClientSession::Connect("127.0.0.1", gateway->port(), id,
                                  client_keys[id], gateway_key.pk);
  }

  TrapSubmission MakeTrap(uint64_t client_id, uint32_t gid, Rng& rng,
                          const std::string& text) {
    auto sub = MakeTrapSubmission(round->EntryPk(gid), gid,
                                  round->TrusteePk(), BytesView(ToBytes(text)),
                                  round->layout(), rng);
    sub.client_id = client_id;
    return sub;
  }
};

RoundResult RunRoundInEngine(Round& round, uint64_t take_seed) {
  Rng take_rng(take_seed);
  RoundEngine engine(&ThreadPool::Shared());
  return engine.RunToCompletion(round.TakeEngineRound({}, take_rng)).round;
}

TEST(ReactorEquivalence, TrapRoundViaTcpMatchesInProcess) {
  // Two rounds built from one seed are key-identical; the same submission
  // bytes entered through the reactor gateway and via in-process
  // SubmitTrap, in the same per-shard order, must produce byte-identical
  // results — the reactor changed the socket engine, not the protocol.
  constexpr uint64_t kSeed = 0x8ab5eed;
  constexpr uint64_t kTakeSeed = 0x84e;
  ReactorFixture net(Variant::kTrap, kSeed);
  ReactorFixture local(Variant::kTrap, kSeed);

  Rng sub_rng(uint64_t{0x7ab1e});
  std::vector<TrapSubmission> subs;
  for (uint64_t u = 0; u < 4; u++) {
    subs.push_back(net.MakeTrap(3000 + u, static_cast<uint32_t>(u % 2),
                                sub_rng, "reactor msg " + std::to_string(u)));
  }

  for (const auto& sub : subs) {
    ASSERT_TRUE(local.round->SubmitTrap(sub));
  }
  RoundResult want = RunRoundInEngine(*local.round, kTakeSeed);
  ASSERT_FALSE(want.aborted) << want.abort_reason;

  for (uint64_t u = 0; u < 4; u++) {
    net.AddClient(3000 + u);
  }
  ASSERT_TRUE(net.StartGateway());
  net.gateway->OpenRound(1);
  std::vector<std::unique_ptr<ClientSession>> sessions;
  for (uint64_t u = 0; u < 4; u++) {
    auto session = net.Connect(3000 + u);
    ASSERT_NE(session, nullptr) << "client " << u << " failed to connect";
    EXPECT_EQ(session->WaitRoundOpen(), 1u);
    ASSERT_TRUE(session->SubmitAndWait(subs[u]));
    sessions.push_back(std::move(session));
  }
  EXPECT_EQ(net.gateway->connection_count(), 4u);
  net.gateway->Cutoff();
  EXPECT_EQ(net.gateway->accepted_count(), 4u);
  RoundResult got = RunRoundInEngine(*net.round, kTakeSeed);
  ASSERT_FALSE(got.aborted) << got.abort_reason;
  EXPECT_EQ(got.plaintexts, want.plaintexts)
      << "reactor-ingress round diverged from in-process submission";
  EXPECT_EQ(got.traps_seen, want.traps_seen);
  EXPECT_EQ(got.inner_seen, want.inner_seen);
}

TEST(ReactorParity, VerdictsMatchBlockingBackend) {
  ReactorFixture fx(Variant::kTrap);
  fx.AddClient(700);
  fx.AddClient(701);
  ASSERT_TRUE(fx.StartGateway());

  Rng rng(uint64_t{0xf00d});
  auto session = fx.Connect(700);
  ASSERT_NE(session, nullptr);

  // No round open yet: kClosed, and the submission never reaches a shard.
  uint64_t seq = session->Submit(fx.MakeTrap(700, 0, rng, "too early"));
  ASSERT_NE(seq, 0u);
  auto status = session->WaitResult(seq);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, SubmitStatus::kClosed);

  fx.gateway->OpenRound(9);
  ASSERT_EQ(session->WaitRoundOpen(), 9u);

  // A submission stamped with someone else's registered id on 700's
  // authenticated channel: kForeignId.
  seq = session->Submit(fx.MakeTrap(701, 0, rng, "not my id"));
  ASSERT_NE(seq, 0u);
  status = session->WaitResult(seq);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, SubmitStatus::kForeignId);

  // An entry group that does not exist: kRejected, pre-verification.
  auto sub = fx.MakeTrap(700, 0, rng, "no such group");
  sub.entry_gid = 7;
  seq = session->Submit(sub);
  ASSERT_NE(seq, 0u);
  status = session->WaitResult(seq);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, SubmitStatus::kRejected);

  fx.gateway->Cutoff();
  EXPECT_EQ(fx.gateway->accepted_count(), 0u);
}

TEST(ReactorHardening, StalledHandshakeReaped) {
  // Slowloris: a dialer that connects and then trickles (or stops) must
  // not hold a connection slot past the handshake deadline.
  ReactorFixture fx(Variant::kTrap);
  GatewayConfig cfg;
  cfg.handshake_deadline_ms = 300;
  ASSERT_TRUE(fx.StartGateway(cfg));

  // One socket that says nothing, one that sends a partial frame header
  // and stalls mid-handshake.
  auto silent = TcpSocket::Dial("127.0.0.1", fx.gateway->port());
  ASSERT_TRUE(silent.has_value());
  auto trickle = TcpSocket::Dial("127.0.0.1", fx.gateway->port());
  ASSERT_TRUE(trickle.has_value());
  uint8_t partial[4] = {16, 0, 0, 0};  // declares 16 bytes, never sends them
  ASSERT_TRUE(trickle->SendAll(BytesView(partial, sizeof(partial))));

  // The gateway reaps both: the peer observes EOF, not a hang.
  silent->SetRecvTimeout(5000);
  trickle->SetRecvTimeout(5000);
  uint8_t byte;
  EXPECT_EQ(recv(silent->fd(), &byte, 1, 0), 0)
      << "silent dialer survived the handshake deadline";
  EXPECT_EQ(recv(trickle->fd(), &byte, 1, 0), 0)
      << "stalled mid-handshake dialer survived the deadline";
  EXPECT_EQ(fx.gateway->connection_count(), 0u);

  // The reaper does not throw out honest latecomers: a real client still
  // connects fine afterwards.
  fx.AddClient(720);
  fx.registry.SeedFromDirectory(fx.directory);
  auto session = fx.Connect(720);
  EXPECT_NE(session, nullptr);
}

TEST(ReactorHardening, IdleSessionReaped) {
  ReactorFixture fx(Variant::kTrap);
  fx.AddClient(730);
  GatewayConfig cfg;
  cfg.idle_timeout_ms = 300;
  ASSERT_TRUE(fx.StartGateway(cfg));

  auto session = fx.Connect(730);
  ASSERT_NE(session, nullptr);
  EXPECT_TRUE(WaitUntil([&] { return fx.gateway->connection_count() == 0; }))
      << "idle session survived the idle timeout";
  EXPECT_TRUE(WaitUntil([&] { return !session->alive(); }))
      << "client never observed the reap";
}

TEST(ReactorHardening, FaultPlanDisconnectsMidStream) {
  // The scenario harness's gateway-churn injection point: with
  // disconnect_rate = 1, the first kSubmit frame read kills the link
  // before its submission reaches the intake.
  ReactorFixture fx(Variant::kTrap);
  fx.AddClient(740);
  auto plan = std::make_shared<FaultPlan>(uint64_t{0x5eed});
  plan->set_client_disconnect_rate(1.0);
  ASSERT_TRUE(fx.StartGateway({}, GatewayBackend::kReactor, plan));
  fx.gateway->OpenRound(1);

  auto session = fx.Connect(740);
  ASSERT_NE(session, nullptr);
  ASSERT_EQ(session->WaitRoundOpen(), 1u);
  Rng rng(uint64_t{0xd15c});
  uint64_t seq = session->Submit(fx.MakeTrap(740, 0, rng, "doomed"));
  ASSERT_NE(seq, 0u);
  EXPECT_TRUE(WaitUntil([&] { return !session->alive(); }))
      << "churn plan never disconnected the client";
  EXPECT_EQ(plan->counts().disconnects, 1u);
  fx.gateway->Cutoff();
  EXPECT_EQ(fx.gateway->accepted_count(), 0u)
      << "a discarded submission reached the intake";
}

TEST(ReactorLifecycle, StartStopUnderLoadIsDeterministic) {
  // Stop() while clients are mid-handshake and mid-submit must close
  // every connection and join every loop — no wedge, no leak, repeatable.
  ReactorFixture fx(Variant::kTrap);
  for (uint64_t u = 0; u < 2; u++) {
    fx.AddClient(800 + u);
  }
  Rng rng(uint64_t{0x10ad});
  std::vector<TrapSubmission> subs;
  for (uint64_t u = 0; u < 2; u++) {
    subs.push_back(fx.MakeTrap(800 + u, static_cast<uint32_t>(u % 2), rng,
                               "load " + std::to_string(u)));
  }
  for (int iter = 0; iter < 3; iter++) {
    ASSERT_TRUE(fx.StartGateway());
    fx.gateway->OpenRound(static_cast<uint64_t>(iter) + 1);
    std::atomic<bool> go{true};
    std::vector<std::thread> clients;
    for (uint64_t u = 0; u < 2; u++) {
      clients.emplace_back([&, u] {
        while (go.load()) {
          auto session = fx.Connect(800 + u);
          if (session == nullptr) {
            continue;  // gateway stopping; retry until told to quit
          }
          session->SubmitAndWait(subs[u]);
        }
      });
    }
    std::this_thread::sleep_for(100ms);
    fx.gateway->Stop();  // races live handshakes and in-flight submits
    go.store(false);
    for (auto& t : clients) {
      t.join();
    }
    EXPECT_EQ(fx.gateway->connection_count(), 0u) << "iteration " << iter;
    fx.gateway.reset();
  }
}

TEST(FleetRouting, ShardedFleetMatchesInProcess) {
  // One reactor gateway per entry group over a shared round: FleetClient
  // routes each message to its group's shard, the union of shard intakes
  // is the full round, and the result is byte-identical to the
  // in-process twin.
  constexpr uint64_t kSeed = 0xf1ee7;
  constexpr uint64_t kTakeSeed = 0xf14e;
  ReactorFixture net(Variant::kTrap, kSeed);
  ReactorFixture local(Variant::kTrap, kSeed);

  Rng sub_rng(uint64_t{0x9ab1e});
  std::vector<TrapSubmission> subs;
  for (uint64_t u = 0; u < 4; u++) {
    subs.push_back(net.MakeTrap(4000 + u, static_cast<uint32_t>(u % 2),
                                sub_rng, "fleet msg " + std::to_string(u)));
  }
  for (const auto& sub : subs) {
    ASSERT_TRUE(local.round->SubmitTrap(sub));
  }
  RoundResult want = RunRoundInEngine(*local.round, kTakeSeed);
  ASSERT_FALSE(want.aborted) << want.abort_reason;

  for (uint64_t u = 0; u < 4; u++) {
    net.AddClient(4000 + u);
  }
  net.registry.SeedFromDirectory(net.directory);
  Rng fleet_rng(uint64_t{0xf1e37});
  GatewayFleet fleet(net.round.get(), &net.registry, fleet_rng);
  ASSERT_TRUE(fleet.Listen());
  fleet.Start();
  ASSERT_EQ(fleet.size(), 2u);
  fleet.OpenRound(1);

  auto roster = fleet.Roster();
  ASSERT_EQ(roster.size(), 2u);

  // A shard only admits its own group: a gid-0 submission pushed at
  // shard 1 is rejected as misrouted, pre-verification.
  {
    auto wrong = ClientSession::Connect("127.0.0.1", roster[1].port,
                                        4000, net.client_keys[4000],
                                        roster[1].pk);
    ASSERT_NE(wrong, nullptr);
    ASSERT_EQ(wrong->WaitRoundOpen(), 1u);
    uint64_t seq = wrong->Submit(subs[0]);
    ASSERT_NE(seq, 0u);
    auto status = wrong->WaitResult(seq);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(*status, SubmitStatus::kRejected);
  }

  for (uint64_t u = 0; u < 4; u++) {
    FleetClient client("127.0.0.1", roster, 4000 + u,
                       net.client_keys[4000 + u]);
    uint32_t gid = static_cast<uint32_t>(u % 2);
    ASSERT_EQ(client.WaitRoundOpen(gid), 1u);
    ClientSession* session = client.Session(gid);
    ASSERT_NE(session, nullptr);
    ASSERT_TRUE(session->SubmitAndWait(subs[u]));
  }
  EXPECT_EQ(fleet.accepted_count(), 4u);
  EXPECT_GE(fleet.gateway(0).accepted_count(), 1u);
  EXPECT_GE(fleet.gateway(1).accepted_count(), 1u);
  fleet.Cutoff();
  fleet.Stop();

  RoundResult got = RunRoundInEngine(*net.round, kTakeSeed);
  ASSERT_FALSE(got.aborted) << got.abort_reason;
  EXPECT_EQ(got.plaintexts, want.plaintexts)
      << "fleet-sharded ingress diverged from in-process submission";
}

}  // namespace
}  // namespace atom
