// Robustness: every Decode entry point is fed adversarial byte strings —
// random blobs, truncations, bit-flips of valid encodings — and must reject
// cleanly (no crash, no acceptance of mangled structures). These are the
// parsers that face untrusted peers in a deployment.
#include <gtest/gtest.h>

#include "src/core/wire.h"
#include "src/crypto/schnorr.h"
#include "src/crypto/shuffle.h"
#include "src/crypto/sigma.h"
#include "src/core/directory.h"
#include "src/util/rng.h"

namespace atom {
namespace {

// Deterministic random blobs of assorted sizes.
std::vector<Bytes> Blobs(uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> out;
  for (size_t len : {0u, 1u, 7u, 32u, 33u, 64u, 99u, 128u, 512u, 4096u}) {
    out.push_back(rng.NextBytes(len));
    out.push_back(Bytes(len, 0x00));
    out.push_back(Bytes(len, 0xff));
  }
  return out;
}

TEST(DecodeFuzz, PointRejectsRandomBlobs) {
  size_t accepted = 0;
  for (const Bytes& blob : Blobs(4000)) {
    auto p = Point::Decode(BytesView(blob));
    if (p.has_value()) {
      accepted++;
      EXPECT_TRUE(p->IsOnCurve());  // anything accepted must be valid
    }
  }
  // All-zero 33-byte blob decodes as infinity; random blobs almost never.
  EXPECT_LE(accepted, 2u);
}

TEST(DecodeFuzz, ScalarRejectsOutOfRange) {
  for (const Bytes& blob : Blobs(4001)) {
    auto s = Scalar::FromBytes(BytesView(blob));
    if (blob.size() != 32) {
      EXPECT_FALSE(s.has_value());
    }
  }
}

TEST(DecodeFuzz, StructuredDecodersNeverCrash) {
  for (const Bytes& blob : Blobs(4002)) {
    BytesView view(blob);
    ElGamalCiphertext::Decode(view);
    DecodeCiphertextVec(view);
    EncProof::Decode(view);
    ReEncProof::Decode(view);
    ShuffleProof::Decode(view);
    SchnorrSignature::Decode(view);
    ServerRecord::Decode(view);
    DecodeNizkSubmission(view);
    DecodeTrapSubmission(view);
  }
  SUCCEED();  // reaching here without aborting is the property
}

TEST(DecodeFuzz, BitFlippedCiphertextNeverEqualsOriginal) {
  Rng rng(4003u);
  auto kp = ElGamalKeyGen(rng);
  auto m = EmbedMessage(BytesView(ToBytes("bits")));
  auto ct = ElGamalEncrypt(kp.pk, *m, rng);
  Bytes enc = ct.Encode();
  for (size_t byte = 0; byte < enc.size(); byte += 5) {
    for (int bit = 0; bit < 8; bit += 3) {
      Bytes flipped = enc;
      flipped[byte] ^= static_cast<uint8_t>(1 << bit);
      auto back = ElGamalCiphertext::Decode(BytesView(flipped));
      if (back.has_value()) {
        // A flip may still decode (e.g. the sign bit of a compressed
        // point), but it must decode to a DIFFERENT ciphertext.
        EXPECT_FALSE(*back == ct)
            << "byte " << byte << " bit " << bit;
      }
    }
  }
}

TEST(DecodeFuzz, ShuffleProofStructuralMutations) {
  Rng rng(4004u);
  auto kp = ElGamalKeyGen(rng);
  CiphertextBatch batch(4);
  for (size_t i = 0; i < 4; i++) {
    Bytes payload = {static_cast<uint8_t>(i)};
    batch[i].push_back(
        ElGamalEncrypt(kp.pk, *EmbedMessage(BytesView(payload)), rng));
  }
  auto result = ShuffleAndProve(kp.pk, batch, rng);
  Bytes enc = result.proof.Encode();

  // Mutating the element counts in the header must not crash or verify.
  for (size_t byte = 0; byte < 8; byte++) {
    Bytes mutated = enc;
    mutated[byte] ^= 0x01;
    auto proof = ShuffleProof::Decode(BytesView(mutated));
    if (proof.has_value()) {
      EXPECT_FALSE(VerifyShuffle(kp.pk, batch, result.output, *proof));
    }
  }
}

}  // namespace
}  // namespace atom
