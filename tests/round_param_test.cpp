// Parameterized full-round sweeps: the complete protocol must deliver every
// honest message across variants, topologies, fault-tolerance settings, and
// message sizes. Also: the statistical §4.4 property that tampering with
// one ciphertext aborts the round with probability ~1/2.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/core/round.h"
#include "src/util/hex.h"
#include "src/util/rng.h"

namespace atom {
namespace {

struct RoundCase {
  Variant variant;
  TopologyKind topology;
  size_t honest_needed;
  size_t message_len;
  size_t users;
};

std::string CaseName(const ::testing::TestParamInfo<RoundCase>& info) {
  const RoundCase& c = info.param;
  std::string name = c.variant == Variant::kTrap ? "Trap" : "Nizk";
  name += c.topology == TopologyKind::kSquare ? "Square" : "Butterfly";
  name += "H" + std::to_string(c.honest_needed);
  name += "Len" + std::to_string(c.message_len);
  return name;
}

class FullRoundSweep : public ::testing::TestWithParam<RoundCase> {};

TEST_P(FullRoundSweep, DeliversEveryHonestMessage) {
  const RoundCase& c = GetParam();
  RoundConfig config;
  config.params.variant = c.variant;
  config.params.topology = c.topology;
  config.params.num_servers = 6;
  config.params.num_groups = 4;
  config.params.group_size = 3;
  config.params.honest_needed = c.honest_needed;
  // Square: 3 mixing iterations. Butterfly: 2 passes over log2(4)=2 bits.
  config.params.iterations = c.topology == TopologyKind::kSquare ? 3 : 2;
  config.params.message_len = c.message_len;
  config.beacon = ToBytes("sweep-" + CaseName({GetParam(), 0}));

  Rng rng(2000u + c.users + c.message_len);
  Round round(config, rng);

  std::set<std::string> sent;
  for (size_t u = 0; u < c.users; u++) {
    uint32_t gid = static_cast<uint32_t>(u) % round.NumGroups();
    Bytes msg = ToBytes("sweep message " + std::to_string(u));
    sent.insert(
        HexEncode(BytesView(PadTo(BytesView(msg), c.message_len))));
    if (c.variant == Variant::kTrap) {
      auto sub = MakeTrapSubmission(round.EntryPk(gid), gid,
                                    round.TrusteePk(), BytesView(msg),
                                    round.layout(), rng);
      ASSERT_TRUE(round.SubmitTrap(sub));
    } else {
      auto sub = MakeNizkSubmission(round.EntryPk(gid), gid, BytesView(msg),
                                    round.layout(), rng);
      ASSERT_TRUE(round.SubmitNizk(sub));
    }
  }

  auto result = round.Run(rng);
  ASSERT_FALSE(result.aborted) << result.abort_reason;
  ASSERT_EQ(result.plaintexts.size(), c.users);
  std::set<std::string> got;
  for (const auto& p : result.plaintexts) {
    got.insert(HexEncode(BytesView(p)));
  }
  EXPECT_EQ(got, sent);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FullRoundSweep,
    ::testing::Values(
        RoundCase{Variant::kTrap, TopologyKind::kSquare, 1, 32, 8},
        RoundCase{Variant::kTrap, TopologyKind::kSquare, 2, 32, 8},
        RoundCase{Variant::kTrap, TopologyKind::kButterfly, 1, 32, 8},
        RoundCase{Variant::kTrap, TopologyKind::kSquare, 1, 160, 6},
        RoundCase{Variant::kNizk, TopologyKind::kSquare, 1, 32, 8},
        RoundCase{Variant::kNizk, TopologyKind::kButterfly, 1, 32, 8},
        RoundCase{Variant::kNizk, TopologyKind::kSquare, 2, 64, 6}),
    CaseName);

// ----------------------------------------------- §4.4 detection statistics

TEST(TrapStatistics, TamperingCaughtAboutHalfTheTime) {
  // A malicious server replacing one ciphertext hits a trap (round aborts)
  // with probability 1/2 because traps and messages are indistinguishable
  // and submitted in random order. 10 deterministic trials: the abort count
  // must be neither 0 nor 10 and hover around 5.
  int aborts = 0;
  constexpr int kTrials = 10;
  for (int trial = 0; trial < kTrials; trial++) {
    RoundConfig config;
    config.params.variant = Variant::kTrap;
    config.params.num_servers = 6;
    config.params.num_groups = 4;
    config.params.group_size = 3;
    config.params.iterations = 2;
    config.params.message_len = 32;
    config.beacon = ToBytes("stats-" + std::to_string(trial));
    Rng rng(3000u + static_cast<uint64_t>(trial));
    Round round(config, rng);
    for (int u = 0; u < 4; u++) {
      uint32_t gid = static_cast<uint32_t>(u) % round.NumGroups();
      auto sub = MakeTrapSubmission(round.EntryPk(gid), gid,
                                    round.TrusteePk(),
                                    BytesView(ToBytes("s")), round.layout(),
                                    rng);
      ASSERT_TRUE(round.SubmitTrap(sub));
    }
    Round::Evil evil{
        1, static_cast<uint32_t>(trial % 4),
        {MaliciousAction::Kind::kTamperDuringReEnc, 1,
         static_cast<size_t>(trial)}};
    auto result = round.Run(rng, &evil);
    aborts += result.aborted ? 1 : 0;
  }
  EXPECT_GE(aborts, 2);
  EXPECT_LE(aborts, 8);
}

TEST(TrapStatistics, MultipleTamperingsAmplifyDetection) {
  // §7: removing κ ciphertexts escapes detection only with probability
  // 2^-κ. Three independent tamperings per round: the survival probability
  // drops to 1/8, so over four deterministic trials we expect (nearly) all
  // rounds to abort, and any survivor to have lost exactly 3 messages.
  int aborts = 0;
  constexpr int kTrials = 4;
  for (int trial = 0; trial < kTrials; trial++) {
    RoundConfig config;
    config.params.variant = Variant::kTrap;
    config.params.num_servers = 6;
    config.params.num_groups = 4;
    config.params.group_size = 3;
    config.params.iterations = 2;
    config.params.message_len = 32;
    config.beacon = ToBytes("amplify-" + std::to_string(trial));
    Rng rng(3100u + static_cast<uint64_t>(trial));
    Round round(config, rng);
    for (int u = 0; u < 8; u++) {
      uint32_t gid = static_cast<uint32_t>(u) % round.NumGroups();
      auto sub = MakeTrapSubmission(round.EntryPk(gid), gid,
                                    round.TrusteePk(),
                                    BytesView(ToBytes("a")), round.layout(),
                                    rng);
      ASSERT_TRUE(round.SubmitTrap(sub));
    }
    // Three different groups each maul one ciphertext at layer 1.
    std::vector<Round::Evil> evils = {
        {1, 0, {MaliciousAction::Kind::kTamperDuringReEnc, 1, 0}},
        {1, 1, {MaliciousAction::Kind::kTamperDuringReEnc, 2, 1}},
        {1, 2, {MaliciousAction::Kind::kTamperDuringReEnc, 1, 2}},
    };
    auto result = round.RunWithEvils(rng, evils);
    if (result.aborted) {
      aborts++;
    } else {
      EXPECT_EQ(result.plaintexts.size(), 5u);  // exactly 3 lost
    }
  }
  EXPECT_GE(aborts, 2);  // survival probability is only (1/2)^3 per trial
}

}  // namespace
}  // namespace atom
