// FaultPlan determinism + the adversarial scenario harness.
//
// The FaultPlan suites pin the replay contract: per-stream PRF decisions
// independent of interleaving, spec round-tripping, deterministic
// mutation. The Scenario suites (compiled only when the atom_server
// binary is available) run scaled-down versions of the five named
// deployments over real processes; failures echo the seed for replay.
#include <gtest/gtest.h>

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "src/net/faults.h"
#include "src/testing/scenario.h"
#include "tests/seed_echo.h"

namespace atom {
namespace {

using atom_test::SeedEcho;
using atom_test::TestSeed;

std::vector<FaultDecision> DrawAll(FaultPlan& plan, uint64_t stream,
                                   size_t n) {
  std::vector<FaultDecision> out;
  for (size_t i = 0; i < n; i++) {
    out.push_back(plan.NextDecision(stream));
  }
  return out;
}

bool SameDecisions(const std::vector<FaultDecision>& a,
                   const std::vector<FaultDecision>& b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); i++) {
    if (a[i].action != b[i].action || a[i].delay != b[i].delay ||
        a[i].mutate_salt != b[i].mutate_salt) {
      return false;
    }
  }
  return true;
}

void MakeMixed(FaultPlan& plan) {
  plan.set_drop_rate(0.2);
  plan.set_duplicate_rate(0.1);
  plan.set_truncate_rate(0.1);
  plan.set_corrupt_rate(0.1);
  plan.set_delay(0.2, std::chrono::milliseconds(5));
}

TEST(FaultPlan, SameSeedSameDecisions) {
  const uint64_t seed = TestSeed(0xfa017);
  SeedEcho echo(seed);
  FaultPlan a(seed), b(seed);
  MakeMixed(a);
  MakeMixed(b);
  const uint64_t stream = FaultPlan::StreamKey(1, 2);
  EXPECT_TRUE(SameDecisions(DrawAll(a, stream, 200),
                            DrawAll(b, stream, 200)));
  // A different seed must not reproduce the stream (astronomically
  // unlikely for 200 draws at these rates).
  FaultPlan c(seed + 1);
  MakeMixed(c);
  EXPECT_FALSE(SameDecisions(DrawAll(a, stream, 200),
                             DrawAll(c, stream, 200)));
}

TEST(FaultPlan, StreamsAreInterleavingIndependent) {
  // The determinism contract: stream s's n-th decision is PRF(seed,s,n)
  // no matter how other streams' draws interleave with it.
  const uint64_t seed = TestSeed(0xfa018);
  SeedEcho echo(seed);
  const uint64_t s1 = FaultPlan::StreamKey(1, 2);
  const uint64_t s2 = FaultPlan::StreamKey(2, 1);  // asymmetric key
  ASSERT_NE(s1, s2);

  FaultPlan serial(seed);
  MakeMixed(serial);
  auto want1 = DrawAll(serial, s1, 100);
  auto want2 = DrawAll(serial, s2, 100);

  FaultPlan interleaved(seed);
  MakeMixed(interleaved);
  std::vector<FaultDecision> got1, got2;
  for (size_t i = 0; i < 100; i++) {
    got2.push_back(interleaved.NextDecision(s2));
    got1.push_back(interleaved.NextDecision(s1));
  }
  EXPECT_TRUE(SameDecisions(want1, got1));
  EXPECT_TRUE(SameDecisions(want2, got2));
}

TEST(FaultPlan, CountsTrackFiredDecisions) {
  const uint64_t seed = TestSeed(0xfa019);
  SeedEcho echo(seed);
  FaultPlan plan(seed);
  MakeMixed(plan);
  auto decisions = DrawAll(plan, FaultPlan::StreamKey(3, 4), 500);
  FaultPlan::Counts counts = plan.counts();
  uint64_t drops = 0, dups = 0, truncs = 0, corrupts = 0, delays = 0;
  for (const FaultDecision& d : decisions) {
    drops += d.action == FaultAction::kDrop;
    dups += d.action == FaultAction::kDuplicate;
    truncs += d.action == FaultAction::kTruncate;
    corrupts += d.action == FaultAction::kCorrupt;
    delays += d.action == FaultAction::kDelay;
  }
  EXPECT_EQ(counts.dropped, drops);
  EXPECT_EQ(counts.duplicated, dups);
  EXPECT_EQ(counts.truncated, truncs);
  EXPECT_EQ(counts.corrupted, corrupts);
  EXPECT_EQ(counts.delayed, delays);
  // With these rates over 500 draws, every class fires (p ≈ 1 - 1e-23
  // at the rarest rate); a zero means the cumulative thresholds broke.
  EXPECT_GT(drops, 0u);
  EXPECT_GT(delays, 0u);
}

TEST(FaultPlan, MutateIsDeterministicAndBounded) {
  const uint64_t seed = TestSeed(0xfa01a);
  SeedEcho echo(seed);
  Bytes frame(64);
  for (size_t i = 0; i < frame.size(); i++) {
    frame[i] = static_cast<uint8_t>(i);
  }

  FaultDecision corrupt{FaultAction::kCorrupt, {}, /*mutate_salt=*/seed};
  Bytes a = frame, b = frame;
  FaultPlan::Mutate(corrupt, a);
  FaultPlan::Mutate(corrupt, b);
  EXPECT_EQ(a, b);  // same salt, same bit
  EXPECT_NE(a, frame);
  size_t flipped_bits = 0;
  for (size_t i = 0; i < frame.size(); i++) {
    uint8_t diff = a[i] ^ frame[i];
    while (diff != 0) {
      flipped_bits += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1u);  // exactly one bit

  FaultDecision truncate{FaultAction::kTruncate, {}, seed};
  Bytes t = frame;
  FaultPlan::Mutate(truncate, t);
  EXPECT_LT(t.size(), frame.size());
  EXPECT_TRUE(std::equal(t.begin(), t.end(), frame.begin()));

  Bytes f1 = frame, f2 = frame;
  FaultPlan::FlipByte(seed, f1);
  FaultPlan::FlipByte(seed, f2);
  EXPECT_EQ(f1, f2);
  EXPECT_NE(f1, frame);
}

TEST(FaultPlan, SeverAndTamperAreRoundScoped) {
  FaultPlan plan(1);
  plan.SeverLink(1, 3, 2, 4);
  plan.SeverLink(5, 6);  // all rounds
  EXPECT_FALSE(plan.LinkSevered(1, 1, 3));
  EXPECT_TRUE(plan.LinkSevered(2, 1, 3));
  EXPECT_TRUE(plan.LinkSevered(4, 3, 1));  // undirected
  EXPECT_FALSE(plan.LinkSevered(5, 1, 3));
  EXPECT_FALSE(plan.LinkSevered(3, 1, 2));  // unrelated pair
  EXPECT_TRUE(plan.LinkSevered(1, 5, 6));
  EXPECT_TRUE(plan.LinkSevered(1000, 6, 5));

  plan.TamperRounds(3, 3);
  EXPECT_FALSE(plan.TamperRound(2));
  EXPECT_TRUE(plan.TamperRound(3));
  EXPECT_FALSE(plan.TamperRound(4));
}

TEST(FaultPlan, DisconnectStreamsArePerClient) {
  const uint64_t seed = TestSeed(0xfa01b);
  SeedEcho echo(seed);
  FaultPlan a(seed), b(seed);
  a.set_client_disconnect_rate(0.5);
  b.set_client_disconnect_rate(0.5);
  // Client 7's verdicts replay identically even when client 9's draws
  // interleave differently on the twin plan.
  std::vector<bool> got_a, got_b;
  for (int i = 0; i < 100; i++) {
    got_a.push_back(a.DisconnectClient(7));
  }
  for (int i = 0; i < 100; i++) {
    b.DisconnectClient(9);
    got_b.push_back(b.DisconnectClient(7));
  }
  EXPECT_EQ(got_a, got_b);
  uint64_t fired = 0;
  for (bool v : got_a) {
    fired += v;
  }
  EXPECT_EQ(a.counts().disconnects, fired);
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, 100u);
}

TEST(FaultPlanSpec, RoundTripsThroughText) {
  FaultPlan plan(42);
  plan.set_drop_rate(0.25);
  plan.set_duplicate_rate(0.125);
  plan.set_truncate_rate(0.0625);
  plan.set_corrupt_rate(0.03125);
  plan.set_delay(0.5, std::chrono::milliseconds(7));
  plan.set_stall(std::chrono::milliseconds(11));
  plan.SeverLink(1, 3, 2, 2);
  plan.TamperRounds(4, 5);
  plan.set_client_disconnect_rate(0.75);

  auto parsed = FaultPlan::Parse(plan.ToSpec());
  ASSERT_NE(parsed, nullptr);
  EXPECT_EQ(parsed->ToSpec(), plan.ToSpec());
  EXPECT_EQ(parsed->seed(), 42u);
  EXPECT_EQ(parsed->stall(), std::chrono::milliseconds(11));
  EXPECT_TRUE(parsed->LinkSevered(2, 3, 1));
  EXPECT_FALSE(parsed->LinkSevered(3, 1, 3));
  EXPECT_TRUE(parsed->TamperRound(4));
  // Identical decision streams after the round trip.
  const uint64_t stream = FaultPlan::StreamKey(1, 2);
  EXPECT_TRUE(
      SameDecisions(DrawAll(plan, stream, 64), DrawAll(*parsed, stream, 64)));
}

TEST(FaultPlanSpec, RejectsMalformedSpecs) {
  // Unknown or malformed fields must reject the whole spec — a typo that
  // silently weakened a scenario would invalidate its invariants.
  const char* bad[] = {
      "seed",           "seed=",          "seed=abc",
      "drop=1.5",       "drop=-0.1",      "drop=x",
      "delay=ms",       "delay=5@2",      "stall=ms",
      "sever=1",        "sever=1-2@3",    "sever=a-b",
      "tamper=3",       "tamper=a-b",     "disconnect=2",
      "seed=1;bogus=2",
  };
  for (const char* spec : bad) {
    EXPECT_EQ(FaultPlan::Parse(spec), nullptr) << spec;
  }
  // And the good forms parse (empty segments are tolerated so a
  // trailing ';' from shell quoting doesn't invalidate a spec).
  EXPECT_NE(FaultPlan::Parse("seed=9"), nullptr);
  EXPECT_NE(FaultPlan::Parse("seed=9;;drop=0.1;"), nullptr);
  EXPECT_NE(FaultPlan::Parse("seed=9;delay=5"), nullptr);  // bare MS = p 1
  EXPECT_NE(FaultPlan::Parse("seed=9;drop=0.5;delay=5@0.25"), nullptr);
  EXPECT_NE(FaultPlan::Parse("sever=1-2"), nullptr);
  EXPECT_NE(FaultPlan::Parse("seed=9;tamper=2-2;stall=10"), nullptr);
}

// ---- Full scenarios over real atom_server processes.

#ifdef ATOM_SERVER_BINARY

ScenarioConfig SmallScenario(const char* name, uint64_t seed) {
  ScenarioConfig config;
  config.name = name;
  config.seed = seed;
  config.rounds = 2;  // still covers the faulted round (id 2)
  config.users = 4;
  config.server_binary = ATOM_SERVER_BINARY;
  return config;
}

void RunAndExpectOk(const ScenarioConfig& config) {
  SeedEcho echo(config.seed);
  ScenarioReport report = RunScenario(config);
  EXPECT_TRUE(report.ok) << report.failure << "\nreplay: chaos_fleet"
                         << " --scenario " << config.name << " --seed "
                         << config.seed;
  // The report serializes (CI uploads these as artifacts).
  EXPECT_NE(report.ToJson().find("\"scenario\":\"" + config.name + "\""),
            std::string::npos);
}

TEST(Scenario, ChurnHoldsByteTwinUnderForcedDisconnects) {
  RunAndExpectOk(SmallScenario("churn", TestSeed(21)));
}

TEST(Scenario, FlashCrowdIsBoundedByBackpressure) {
  RunAndExpectOk(SmallScenario("flash_crowd", TestSeed(22)));
}

TEST(Scenario, PartitionAbortsOnlyTheSeveredRound) {
  RunAndExpectOk(SmallScenario("partition", TestSeed(23)));
}

TEST(Scenario, StragglerSlowsButCompletes) {
  RunAndExpectOk(SmallScenario("straggler", TestSeed(24)));
}

TEST(Scenario, ByzantineMixerIsDetectedWithoutFramingUsers) {
  RunAndExpectOk(SmallScenario("byzantine", TestSeed(25)));
}

TEST(Scenario, DialingSurvivesChurn) {
  ScenarioConfig config = SmallScenario("churn", TestSeed(26));
  config.workload = WorkloadKind::kDialing;
  RunAndExpectOk(config);
}

TEST(Scenario, MicroblogSurvivesStraggler) {
  ScenarioConfig config = SmallScenario("straggler", TestSeed(27));
  config.workload = WorkloadKind::kMicroblog;
  RunAndExpectOk(config);
}

size_t CountOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) {
    return 0;
  }
  size_t n = 0;
  while (dirent* entry = readdir(dir)) {
    n += entry->d_name[0] != '.';
  }
  closedir(dir);
  return n - 1;  // the opendir fd itself
}

long RssKb() {
  FILE* status = std::fopen("/proc/self/status", "r");
  if (status == nullptr) {
    return 0;
  }
  char line[256];
  long kb = 0;
  while (std::fgets(line, sizeof(line), status) != nullptr) {
    if (std::sscanf(line, "VmRSS: %ld kB", &kb) == 1) {
      break;
    }
  }
  std::fclose(status);
  return kb;
}

// The 10x-population reactor runs: the same invariant matrix (liveness,
// blame, fidelity, workload) the small scenarios assert, over the epoll
// gateway, plus resource hygiene — sockets and memory must return to
// baseline after the run (a per-connection or per-round leak at this
// population is visible; at the small one it hides). A small warmup run
// settles one-time allocations (thread pool, allocator arenas) so the
// measured run's growth is the scenario's own.
void RunTenXOverReactor(const char* name, uint64_t warm_seed,
                        uint64_t seed) {
  ScenarioConfig warmup = SmallScenario(name, warm_seed);
  warmup.gateway_backend = GatewayBackend::kReactor;
  RunAndExpectOk(warmup);

  ScenarioConfig config = SmallScenario(name, seed);
  config.gateway_backend = GatewayBackend::kReactor;
  config.users = 40;  // 10x the small population
  size_t fds_before = CountOpenFds();
  long rss_before = RssKb();
  RunAndExpectOk(config);
  EXPECT_LE(CountOpenFds(), fds_before + 4)
      << name << " at 10x leaked file descriptors across its rounds";
  EXPECT_LE(RssKb(), rss_before + 64 * 1024)
      << name << " at 10x grew RSS past the leak bound";
}

TEST(Scenario, ChurnAtTenXOverReactorWithoutLeaks) {
  RunTenXOverReactor("churn", TestSeed(28), TestSeed(29));
}

TEST(Scenario, FlashCrowdAtTenXOverReactorWithoutLeaks) {
  RunTenXOverReactor("flash_crowd", TestSeed(30), TestSeed(31));
}

#endif  // ATOM_SERVER_BINARY

}  // namespace
}  // namespace atom
