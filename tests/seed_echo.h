// Seed-echoing helpers for randomized/fault-injection tests.
//
// A test that derives its randomness through TestSeed() can be replayed
// exactly: on failure, the SeedEcho guard prints one line with the seed
// and the --gtest_filter that reruns just that test, and setting
// ATOM_TEST_SEED in the environment overrides the seed for the replay.
//
//   TEST(Suite, Case) {
//     const uint64_t seed = atom_test::TestSeed(0x1234);
//     atom_test::SeedEcho echo(seed);
//     Rng rng(seed);
//     ...
//   }
#ifndef TESTS_SEED_ECHO_H_
#define TESTS_SEED_ECHO_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>

namespace atom_test {

// The test's seed: ATOM_TEST_SEED when set (replay), else `fallback`.
inline uint64_t TestSeed(uint64_t fallback) {
  const char* env = std::getenv("ATOM_TEST_SEED");
  if (env != nullptr && env[0] != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return fallback;
}

// Prints the replay line when the enclosing test fails.
class SeedEcho {
 public:
  explicit SeedEcho(uint64_t seed) : seed_(seed) {}
  SeedEcho(const SeedEcho&) = delete;
  SeedEcho& operator=(const SeedEcho&) = delete;
  ~SeedEcho() {
    if (!::testing::Test::HasFailure()) {
      return;
    }
    const auto* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    std::fprintf(stderr,
                 "[seed-echo] replay: ATOM_TEST_SEED=%llu <binary> "
                 "--gtest_filter=%s.%s\n",
                 static_cast<unsigned long long>(seed_),
                 info != nullptr ? info->test_suite_name() : "?",
                 info != nullptr ? info->name() : "?");
  }

 private:
  const uint64_t seed_;
};

}  // namespace atom_test

#endif  // TESTS_SEED_ECHO_H_
