// Tests for the verifiable shuffle: completeness over batch shapes and
// worker counts, zero-knowledge-ish sanity (proofs differ run to run),
// soundness against tampering (drop / duplicate / replace / reorder attacks
// a malicious Atom server could attempt), and serialization.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/crypto/shuffle.h"
#include "src/util/rng.h"

namespace atom {
namespace {

CiphertextBatch MakeBatch(const Point& pk, size_t n, size_t l, Rng& rng) {
  CiphertextBatch batch(n);
  for (size_t i = 0; i < n; i++) {
    for (size_t c = 0; c < l; c++) {
      Bytes payload = rng.NextBytes(kEmbedCapacity);
      payload[0] = static_cast<uint8_t>(i);  // tag messages by index
      auto m = EmbedMessage(BytesView(payload));
      batch[i].push_back(ElGamalEncrypt(pk, *m, rng));
    }
  }
  return batch;
}

std::vector<Bytes> DecryptAll(const Scalar& sk, const CiphertextBatch& batch) {
  std::vector<Bytes> out;
  for (const auto& vec : batch) {
    Bytes joined;
    for (const auto& ct : vec) {
      auto m = ElGamalDecrypt(sk, ct);
      EXPECT_TRUE(m.has_value());
      auto data = ExtractMessage(*m);
      EXPECT_TRUE(data.has_value());
      joined.insert(joined.end(), data->begin(), data->end());
    }
    out.push_back(joined);
  }
  return out;
}

TEST(PlainShuffle, PermutesAndPreservesPlaintexts) {
  Rng rng(200u);
  auto kp = ElGamalKeyGen(rng);
  auto batch = MakeBatch(kp.pk, 16, 2, rng);
  auto before = DecryptAll(kp.sk, batch);

  std::vector<uint32_t> perm;
  auto shuffled = ShuffleBatch(kp.pk, batch, rng, &perm);
  auto after = DecryptAll(kp.sk, shuffled);

  // Same multiset of plaintexts.
  auto sorted_before = before, sorted_after = after;
  std::sort(sorted_before.begin(), sorted_before.end());
  std::sort(sorted_after.begin(), sorted_after.end());
  EXPECT_EQ(sorted_before, sorted_after);
  // And the reported permutation is the true one.
  for (size_t i = 0; i < perm.size(); i++) {
    EXPECT_EQ(after[i], before[perm[i]]);
  }
}

TEST(PlainShuffle, CiphertextsAreRerandomized) {
  Rng rng(201u);
  auto kp = ElGamalKeyGen(rng);
  auto batch = MakeBatch(kp.pk, 8, 1, rng);
  auto shuffled = ShuffleBatch(kp.pk, batch, rng);
  // No output ciphertext may textually equal any input ciphertext.
  for (const auto& out : shuffled) {
    for (const auto& in : batch) {
      EXPECT_FALSE(out[0] == in[0]);
    }
  }
}

TEST(RandomPermutationTest, IsPermutationAndVaries) {
  Rng rng(202u);
  auto p1 = RandomPermutation(64, rng);
  auto p2 = RandomPermutation(64, rng);
  auto sorted = p1;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); i++) {
    EXPECT_EQ(sorted[i], i);
  }
  EXPECT_NE(p1, p2);
}

struct ShuffleShape {
  size_t n;
  size_t l;
  size_t workers;
};

class ShuffleProofTest : public ::testing::TestWithParam<ShuffleShape> {};

TEST_P(ShuffleProofTest, CompletenessAcrossShapes) {
  auto [n, l, workers] = GetParam();
  Rng rng(300u + n * 10 + l);
  auto kp = ElGamalKeyGen(rng);
  auto batch = MakeBatch(kp.pk, n, l, rng);
  auto result = ShuffleAndProve(kp.pk, batch, rng, workers);
  EXPECT_TRUE(
      VerifyShuffle(kp.pk, batch, result.output, result.proof, workers));
  // Plaintext multiset preserved.
  auto before = DecryptAll(kp.sk, batch);
  auto after = DecryptAll(kp.sk, result.output);
  std::sort(before.begin(), before.end());
  std::sort(after.begin(), after.end());
  EXPECT_EQ(before, after);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShuffleProofTest,
    ::testing::Values(ShuffleShape{1, 1, 1}, ShuffleShape{2, 1, 1},
                      ShuffleShape{8, 1, 1}, ShuffleShape{8, 3, 1},
                      ShuffleShape{33, 2, 1}, ShuffleShape{64, 1, 2},
                      ShuffleShape{128, 2, 4}));

TEST(ShuffleProofSoundness, RejectsDroppedMessage) {
  Rng rng(400u);
  auto kp = ElGamalKeyGen(rng);
  auto batch = MakeBatch(kp.pk, 8, 1, rng);
  auto result = ShuffleAndProve(kp.pk, batch, rng);
  // Malicious server drops one output and substitutes a fresh encryption.
  auto evil = result.output;
  auto junk = EmbedMessage(BytesView(ToBytes("junk")));
  evil[3][0] = ElGamalEncrypt(kp.pk, *junk, rng);
  EXPECT_FALSE(VerifyShuffle(kp.pk, batch, evil, result.proof));
}

TEST(ShuffleProofSoundness, RejectsDuplicatedMessage) {
  Rng rng(401u);
  auto kp = ElGamalKeyGen(rng);
  auto batch = MakeBatch(kp.pk, 8, 1, rng);
  auto result = ShuffleAndProve(kp.pk, batch, rng);
  auto evil = result.output;
  evil[5] = evil[2];  // duplicate one message, dropping another
  EXPECT_FALSE(VerifyShuffle(kp.pk, batch, evil, result.proof));
}

TEST(ShuffleProofSoundness, RejectsTamperedComponent) {
  Rng rng(402u);
  auto kp = ElGamalKeyGen(rng);
  auto batch = MakeBatch(kp.pk, 8, 2, rng);
  auto result = ShuffleAndProve(kp.pk, batch, rng);
  auto evil = result.output;
  evil[0][1].c = evil[0][1].c + Point::Generator();
  EXPECT_FALSE(VerifyShuffle(kp.pk, batch, evil, result.proof));
}

TEST(ShuffleProofSoundness, RejectsProofForDifferentInput) {
  Rng rng(403u);
  auto kp = ElGamalKeyGen(rng);
  auto batch1 = MakeBatch(kp.pk, 8, 1, rng);
  auto batch2 = MakeBatch(kp.pk, 8, 1, rng);
  auto result = ShuffleAndProve(kp.pk, batch1, rng);
  EXPECT_FALSE(VerifyShuffle(kp.pk, batch2, result.output, result.proof));
}

TEST(ShuffleProofSoundness, RejectsWrongPublicKey) {
  Rng rng(404u);
  auto kp = ElGamalKeyGen(rng);
  auto other = ElGamalKeyGen(rng);
  auto batch = MakeBatch(kp.pk, 8, 1, rng);
  auto result = ShuffleAndProve(kp.pk, batch, rng);
  EXPECT_FALSE(VerifyShuffle(other.pk, batch, result.output, result.proof));
}

TEST(ShuffleProofSoundness, RejectsMutatedResponses) {
  Rng rng(405u);
  auto kp = ElGamalKeyGen(rng);
  auto batch = MakeBatch(kp.pk, 4, 1, rng);
  auto result = ShuffleAndProve(kp.pk, batch, rng);
  {
    auto evil = result.proof;
    evil.s1 = evil.s1 + Scalar::One();
    EXPECT_FALSE(VerifyShuffle(kp.pk, batch, result.output, evil));
  }
  {
    auto evil = result.proof;
    evil.s_prime[2] = evil.s_prime[2] + Scalar::One();
    EXPECT_FALSE(VerifyShuffle(kp.pk, batch, result.output, evil));
  }
  {
    auto evil = result.proof;
    evil.s_hat[1] = evil.s_hat[1] + Scalar::One();
    EXPECT_FALSE(VerifyShuffle(kp.pk, batch, result.output, evil));
  }
  {
    auto evil = result.proof;
    evil.s4[0] = evil.s4[0] + Scalar::One();
    EXPECT_FALSE(VerifyShuffle(kp.pk, batch, result.output, evil));
  }
}

TEST(ShuffleProofSoundness, RejectsShapeMismatch) {
  Rng rng(406u);
  auto kp = ElGamalKeyGen(rng);
  auto batch = MakeBatch(kp.pk, 4, 1, rng);
  auto result = ShuffleAndProve(kp.pk, batch, rng);
  auto shorter = result.output;
  shorter.pop_back();
  EXPECT_FALSE(VerifyShuffle(kp.pk, batch, shorter, result.proof));
}

TEST(ShuffleProof, ProofsAreRandomized) {
  // Two proofs over the same input differ (fresh permutation + randomness):
  // a basic zero-knowledge sanity check.
  Rng rng(407u);
  auto kp = ElGamalKeyGen(rng);
  auto batch = MakeBatch(kp.pk, 4, 1, rng);
  auto r1 = ShuffleAndProve(kp.pk, batch, rng);
  auto r2 = ShuffleAndProve(kp.pk, batch, rng);
  EXPECT_FALSE(r1.proof.Encode() == r2.proof.Encode());
}

TEST(ShuffleProof, EncodeDecodeRoundTrip) {
  Rng rng(408u);
  auto kp = ElGamalKeyGen(rng);
  auto batch = MakeBatch(kp.pk, 8, 2, rng);
  auto result = ShuffleAndProve(kp.pk, batch, rng);
  Bytes enc = result.proof.Encode();
  auto back = ShuffleProof::Decode(BytesView(enc));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(VerifyShuffle(kp.pk, batch, result.output, *back));
  // Truncation and bit flips must fail to decode or verify.
  Bytes truncated(enc.begin(), enc.end() - 5);
  EXPECT_FALSE(ShuffleProof::Decode(BytesView(truncated)).has_value());
}

TEST(ShuffleProof, ParallelAndSerialAgree) {
  Rng rng(409u);
  auto kp = ElGamalKeyGen(rng);
  auto batch = MakeBatch(kp.pk, 32, 1, rng);
  auto result = ShuffleAndProve(kp.pk, batch, rng, /*workers=*/4);
  EXPECT_TRUE(VerifyShuffle(kp.pk, batch, result.output, result.proof, 1));
  EXPECT_TRUE(VerifyShuffle(kp.pk, batch, result.output, result.proof, 4));
}

}  // namespace
}  // namespace atom
