// Tests for EncProof and ReEncProof: completeness, binding (gid / statement),
// serialization, and rejection of forged or mismatched statements.
#include <gtest/gtest.h>

#include "src/crypto/sigma.h"
#include "src/util/rng.h"

namespace atom {
namespace {

struct ProofFixture {
  Rng rng{uint64_t{42}};
  ElGamalKeypair group = ElGamalKeyGen(rng);
  ElGamalKeypair next_group = ElGamalKeyGen(rng);
  Point m = *EmbedMessage(BytesView(ToBytes("proof me")));
};

TEST(EncProof, CompletesAndVerifies) {
  ProofFixture s;
  Scalar r;
  auto ct = ElGamalEncrypt(s.group.pk, s.m, s.rng, &r);
  auto proof = MakeEncProof(s.group.pk, /*gid=*/7, ct, r, s.rng);
  EXPECT_TRUE(VerifyEncProof(s.group.pk, 7, ct, proof));
}

TEST(EncProof, RejectsWrongGid) {
  // The gid binding prevents replaying a (ciphertext, proof) pair at a
  // different entry group (§3).
  ProofFixture s;
  Scalar r;
  auto ct = ElGamalEncrypt(s.group.pk, s.m, s.rng, &r);
  auto proof = MakeEncProof(s.group.pk, 7, ct, r, s.rng);
  EXPECT_FALSE(VerifyEncProof(s.group.pk, 8, ct, proof));
}

TEST(EncProof, RejectsRerandomizedCopy) {
  // A malicious user rerandomizes an honest ciphertext; without knowledge of
  // the total randomness they cannot produce a fresh valid proof, and the
  // old proof fails against the new ciphertext.
  ProofFixture s;
  Scalar r;
  auto ct = ElGamalEncrypt(s.group.pk, s.m, s.rng, &r);
  auto proof = MakeEncProof(s.group.pk, 7, ct, r, s.rng);
  auto copy = ElGamalRerandomize(s.group.pk, ct, s.rng);
  ASSERT_TRUE(copy.has_value());
  EXPECT_FALSE(VerifyEncProof(s.group.pk, 7, *copy, proof));
}

TEST(EncProof, RejectsWrongWitness) {
  ProofFixture s;
  Scalar r;
  auto ct = ElGamalEncrypt(s.group.pk, s.m, s.rng, &r);
  Scalar wrong = Scalar::Random(s.rng);
  auto proof = MakeEncProof(s.group.pk, 7, ct, wrong, s.rng);
  EXPECT_FALSE(VerifyEncProof(s.group.pk, 7, ct, proof));
}

TEST(EncProof, RejectsTamperedProof) {
  ProofFixture s;
  Scalar r;
  auto ct = ElGamalEncrypt(s.group.pk, s.m, s.rng, &r);
  auto proof = MakeEncProof(s.group.pk, 7, ct, r, s.rng);
  proof.u = proof.u + Scalar::One();
  EXPECT_FALSE(VerifyEncProof(s.group.pk, 7, ct, proof));
}

TEST(EncProof, EncodeDecodeRoundTrip) {
  ProofFixture s;
  Scalar r;
  auto ct = ElGamalEncrypt(s.group.pk, s.m, s.rng, &r);
  auto proof = MakeEncProof(s.group.pk, 7, ct, r, s.rng);
  Bytes enc = proof.Encode();
  EXPECT_EQ(enc.size(), EncProof::kEncodedSize);
  auto back = EncProof::Decode(BytesView(enc));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(VerifyEncProof(s.group.pk, 7, ct, *back));
}

TEST(EncProof, VectorProofs) {
  ProofFixture s;
  std::vector<Point> ms = {*EmbedMessage(BytesView(ToBytes("a"))),
                           *EmbedMessage(BytesView(ToBytes("b"))),
                           *EmbedMessage(BytesView(ToBytes("c")))};
  std::vector<Scalar> rs;
  auto cts = ElGamalEncryptVec(s.group.pk, ms, s.rng, &rs);
  auto proofs = MakeEncProofVec(s.group.pk, 3, cts, rs, s.rng);
  EXPECT_TRUE(VerifyEncProofVec(s.group.pk, 3, cts, proofs));
  // Swapping two components must fail (each proof binds its component).
  std::swap(cts[0], cts[1]);
  EXPECT_FALSE(VerifyEncProofVec(s.group.pk, 3, cts, proofs));
}

TEST(EncProof, BatchVerifyAcceptsValidBatch) {
  ProofFixture s;
  std::vector<Point> ms;
  for (int i = 0; i < 16; i++) {
    ms.push_back(*EmbedMessage(BytesView(Bytes{static_cast<uint8_t>(i)})));
  }
  std::vector<Scalar> rs;
  auto cts = ElGamalEncryptVec(s.group.pk, ms, s.rng, &rs);
  auto proofs = MakeEncProofVec(s.group.pk, 9, cts, rs, s.rng);
  EXPECT_TRUE(VerifyEncProofBatch(s.group.pk, 9, cts, proofs));
  // The vector entry point dispatches to the batch path at this size.
  EXPECT_TRUE(VerifyEncProofVec(s.group.pk, 9, cts, proofs));
}

TEST(EncProof, BatchVerifyCatchesAnySingleBadProof) {
  ProofFixture s;
  std::vector<Point> ms;
  for (int i = 0; i < 12; i++) {
    ms.push_back(*EmbedMessage(BytesView(Bytes{static_cast<uint8_t>(i)})));
  }
  std::vector<Scalar> rs;
  auto cts = ElGamalEncryptVec(s.group.pk, ms, s.rng, &rs);
  auto proofs = MakeEncProofVec(s.group.pk, 9, cts, rs, s.rng);
  for (size_t bad = 0; bad < proofs.size(); bad += 3) {
    auto tampered = proofs;
    tampered[bad].u = tampered[bad].u + Scalar::One();
    EXPECT_FALSE(VerifyEncProofBatch(s.group.pk, 9, cts, tampered))
        << "bad proof at " << bad << " slipped through the batch";
  }
}

TEST(EncProof, BatchVerifyBindsGidAndKey) {
  ProofFixture s;
  std::vector<Point> ms = {*EmbedMessage(BytesView(ToBytes("a"))),
                           *EmbedMessage(BytesView(ToBytes("b")))};
  std::vector<Scalar> rs;
  auto cts = ElGamalEncryptVec(s.group.pk, ms, s.rng, &rs);
  auto proofs = MakeEncProofVec(s.group.pk, 1, cts, rs, s.rng);
  EXPECT_TRUE(VerifyEncProofBatch(s.group.pk, 1, cts, proofs));
  EXPECT_FALSE(VerifyEncProofBatch(s.group.pk, 2, cts, proofs));
  EXPECT_FALSE(VerifyEncProofBatch(s.next_group.pk, 1, cts, proofs));
}

TEST(EncProof, BatchVerifyRejectsSizeMismatch) {
  ProofFixture s;
  std::vector<Point> ms = {*EmbedMessage(BytesView(ToBytes("a")))};
  std::vector<Scalar> rs;
  auto cts = ElGamalEncryptVec(s.group.pk, ms, s.rng, &rs);
  auto proofs = MakeEncProofVec(s.group.pk, 0, cts, rs, s.rng);
  proofs.push_back(proofs[0]);
  EXPECT_FALSE(VerifyEncProofBatch(s.group.pk, 0, cts, proofs));
}

// -------------------------------------------------------------- ReEncProof

TEST(ReEncProof, FirstHopCompletesAndVerifies) {
  ProofFixture s;
  auto ct = ElGamalEncrypt(s.group.pk, s.m, s.rng);
  Scalar rewrap;
  auto out = ElGamalReEnc(s.group.sk, &s.next_group.pk, ct, s.rng, &rewrap);
  auto proof = MakeReEncProof(s.group.sk, s.group.pk, &s.next_group.pk, ct,
                              out, rewrap, s.rng);
  EXPECT_TRUE(VerifyReEncProof(s.group.pk, &s.next_group.pk, ct, out, proof));
}

TEST(ReEncProof, MidChainCompletesAndVerifies) {
  // Second server in a group: input already has Y != ⊥.
  ProofFixture s;
  auto s2 = ElGamalKeyGen(s.rng);
  Point combined_pk = s.group.pk + s2.pk;
  auto ct = ElGamalEncrypt(combined_pk, s.m, s.rng);
  auto mid = ElGamalReEnc(s.group.sk, &s.next_group.pk, ct, s.rng);
  Scalar rewrap;
  auto out = ElGamalReEnc(s2.sk, &s.next_group.pk, mid, s.rng, &rewrap);
  auto proof = MakeReEncProof(s2.sk, s2.pk, &s.next_group.pk, mid, out,
                              rewrap, s.rng);
  EXPECT_TRUE(VerifyReEncProof(s2.pk, &s.next_group.pk, mid, out, proof));
}

TEST(ReEncProof, FinalHopPureDecryption) {
  // Last layer of the network: next_pk = nullptr (paper: pk_i = ⊥).
  ProofFixture s;
  auto ct = ElGamalEncrypt(s.group.pk, s.m, s.rng);
  Scalar rewrap;
  auto out = ElGamalReEnc(s.group.sk, nullptr, ct, s.rng, &rewrap);
  EXPECT_TRUE(rewrap.IsZero());
  auto proof = MakeReEncProof(s.group.sk, s.group.pk, nullptr, ct, out,
                              rewrap, s.rng);
  EXPECT_TRUE(VerifyReEncProof(s.group.pk, nullptr, ct, out, proof));
  // The stripped ciphertext holds the plaintext.
  auto fin = ElGamalFinalizeHop(out);
  auto dec = ElGamalDecrypt(Scalar::Zero(), fin);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, s.m);
}

TEST(ReEncProof, DetectsPlaintextTampering) {
  // A malicious server swaps in a different message during ReEnc; the honest
  // server's verification must catch it (this is the §4.3 guarantee).
  ProofFixture s;
  auto ct = ElGamalEncrypt(s.group.pk, s.m, s.rng);
  Scalar rewrap;
  auto out = ElGamalReEnc(s.group.sk, &s.next_group.pk, ct, s.rng, &rewrap);
  // Tamper: add a point to the payload component.
  auto evil = out;
  evil.c = evil.c + *EmbedMessage(BytesView(ToBytes("evil")));
  auto proof = MakeReEncProof(s.group.sk, s.group.pk, &s.next_group.pk, ct,
                              evil, rewrap, s.rng);
  EXPECT_FALSE(
      VerifyReEncProof(s.group.pk, &s.next_group.pk, ct, evil, proof));
}

TEST(ReEncProof, DetectsWrongServerKey) {
  ProofFixture s;
  auto other = ElGamalKeyGen(s.rng);
  auto ct = ElGamalEncrypt(s.group.pk, s.m, s.rng);
  Scalar rewrap;
  // Server strips with a different key than it committed to.
  auto out = ElGamalReEnc(other.sk, &s.next_group.pk, ct, s.rng, &rewrap);
  auto proof = MakeReEncProof(other.sk, other.pk, &s.next_group.pk, ct, out,
                              rewrap, s.rng);
  EXPECT_FALSE(
      VerifyReEncProof(s.group.pk, &s.next_group.pk, ct, out, proof));
}

TEST(ReEncProof, DetectsYTampering) {
  ProofFixture s;
  auto ct = ElGamalEncrypt(s.group.pk, s.m, s.rng);
  Scalar rewrap;
  auto out = ElGamalReEnc(s.group.sk, &s.next_group.pk, ct, s.rng, &rewrap);
  auto proof = MakeReEncProof(s.group.sk, s.group.pk, &s.next_group.pk, ct,
                              out, rewrap, s.rng);
  auto evil = out;
  evil.y = evil.y + Point::Generator();
  EXPECT_FALSE(
      VerifyReEncProof(s.group.pk, &s.next_group.pk, ct, evil, proof));
}

TEST(ReEncProof, DetectsNextKeySubstitution) {
  // Proof made for next group A must not verify against next group B.
  ProofFixture s;
  auto groupB = ElGamalKeyGen(s.rng);
  auto ct = ElGamalEncrypt(s.group.pk, s.m, s.rng);
  Scalar rewrap;
  auto out = ElGamalReEnc(s.group.sk, &s.next_group.pk, ct, s.rng, &rewrap);
  auto proof = MakeReEncProof(s.group.sk, s.group.pk, &s.next_group.pk, ct,
                              out, rewrap, s.rng);
  EXPECT_FALSE(VerifyReEncProof(s.group.pk, &groupB.pk, ct, out, proof));
}

TEST(ReEncProof, EncodeDecodeRoundTrip) {
  ProofFixture s;
  auto ct = ElGamalEncrypt(s.group.pk, s.m, s.rng);
  Scalar rewrap;
  auto out = ElGamalReEnc(s.group.sk, &s.next_group.pk, ct, s.rng, &rewrap);
  auto proof = MakeReEncProof(s.group.sk, s.group.pk, &s.next_group.pk, ct,
                              out, rewrap, s.rng);
  Bytes enc = proof.Encode();
  EXPECT_EQ(enc.size(), ReEncProof::kEncodedSize);
  auto back = ReEncProof::Decode(BytesView(enc));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(
      VerifyReEncProof(s.group.pk, &s.next_group.pk, ct, out, *back));
}

}  // namespace
}  // namespace atom
