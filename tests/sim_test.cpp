// Tests for the evaluation harness: cost-model calibration, network model,
// single-group hop estimates (cross-checked against real execution), and
// the full-network round estimator's scaling properties.
#include <gtest/gtest.h>

#include <chrono>

#include "src/core/group_runtime.h"
#include "src/sim/groupsim.h"
#include "src/sim/netsim.h"
#include "src/util/rng.h"

namespace atom {
namespace {

const CostModel& SharedCosts() {
  static const CostModel costs = [] {
    Rng rng(900u);
    return CostModel::Measure(rng, 32);
  }();
  return costs;
}

TEST(CostModel, MeasuredValuesArePositiveAndOrdered) {
  const CostModel& cm = SharedCosts();
  EXPECT_GT(cm.enc, 0);
  EXPECT_GT(cm.reenc, 0);
  EXPECT_GT(cm.shuffle_per_msg, 0);
  EXPECT_GT(cm.shuf_prove_per_msg, 0);
  EXPECT_GT(cm.shuf_verify_per_msg, 0);
  EXPECT_GT(cm.kem_decrypt, 0);
  // Structural orderings that must hold for any sane implementation:
  // a ReEnc (3 scalar mults) costs more than an Enc (2, one fixed-base).
  EXPECT_GT(cm.reenc, cm.enc * 0.5);
  // Producing a shuffle proof costs more per message than plain shuffling.
  EXPECT_GT(cm.shuf_prove_per_msg, cm.shuffle_per_msg);
}

TEST(CostModel, PaperTable3Loads) {
  CostModel cm = CostModel::PaperTable3();
  EXPECT_NEAR(cm.enc, 1.40e-4, 1e-9);
  EXPECT_NEAR(cm.shuf_verify_per_msg * 1024, 1.41, 1e-6);
}

TEST(NetworkModelTest, TorLikeDistribution) {
  Rng rng(901u);
  NetworkModel net = NetworkModel::TorLike(1024, rng);
  ASSERT_EQ(net.size(), 1024u);
  size_t four = 0, eight = 0, sixteen = 0, thirtytwo = 0;
  for (const HostSpec& h : net.hosts()) {
    switch (h.cores) {
      case 4: four++; break;
      case 8: eight++; break;
      case 16: sixteen++; break;
      case 32: thirtytwo++; break;
      default: FAIL() << "unexpected core count " << h.cores;
    }
  }
  // 80/10/5/5 within sampling slack.
  EXPECT_NEAR(static_cast<double>(four) / 1024, 0.80, 0.05);
  EXPECT_NEAR(static_cast<double>(eight) / 1024, 0.10, 0.04);
  EXPECT_NEAR(static_cast<double>(sixteen) / 1024, 0.05, 0.03);
  EXPECT_NEAR(static_cast<double>(thirtytwo) / 1024, 0.05, 0.03);
}

TEST(NetworkModelTest, LatencyRanges) {
  Rng rng(902u);
  NetworkModel net = NetworkModel::TorLike(64, rng);
  for (uint32_t a = 0; a < 64; a++) {
    for (uint32_t b = 0; b < 64; b++) {
      double lat = net.LatencySeconds(a, b);
      if (net.host(a).cluster == net.host(b).cluster) {
        EXPECT_DOUBLE_EQ(lat, 0.040);
      } else {
        EXPECT_GE(lat, 0.080);
        EXPECT_LE(lat, 0.160);
      }
      EXPECT_DOUBLE_EQ(lat, net.LatencySeconds(b, a));  // symmetric
    }
  }
}

// ------------------------------------------------------------- group sim --

TEST(GroupSim, LinearInMessages) {
  // Fig. 5 shape: time per mixing iteration is linear in the batch size.
  GroupSimConfig config;
  config.group_size = config.threshold = 32;
  config.variant = Variant::kTrap;
  config.messages = 1024;
  double t1 = EstimateGroupHop(config, SharedCosts()).total_seconds;
  config.messages = 2048;
  double t2 = EstimateGroupHop(config, SharedCosts()).total_seconds;
  config.messages = 4096;
  double t4 = EstimateGroupHop(config, SharedCosts()).total_seconds;
  // Compute scales 2x; the fixed network term dilutes it slightly.
  EXPECT_GT(t2, t1 * 1.3);
  EXPECT_LT(t2, t1 * 2.1);
  EXPECT_GT(t4, t2 * 1.5);
}

TEST(GroupSim, NizkCostsAFewTimesTrap) {
  // §6.1: "the NIZK variant takes about four times longer than trap".
  GroupSimConfig config;
  config.group_size = config.threshold = 32;
  config.messages = 4096;
  config.variant = Variant::kTrap;
  double trap = EstimateGroupHop(config, SharedCosts()).total_seconds;
  config.variant = Variant::kNizk;
  double nizk = EstimateGroupHop(config, SharedCosts()).total_seconds;
  EXPECT_GT(nizk, trap * 2.0);
  EXPECT_LT(nizk, trap * 12.0);
}

TEST(GroupSim, LinearInGroupSize) {
  // Fig. 6 shape: each extra server adds a serial chain step.
  GroupSimConfig config;
  config.messages = 1024;
  config.variant = Variant::kTrap;
  double prev = 0;
  for (size_t k : {4u, 8u, 16u, 32u, 64u}) {
    config.group_size = config.threshold = k;
    double t = EstimateGroupHop(config, SharedCosts()).total_seconds;
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(GroupSim, TrapScalesNearLinearlyWithCores) {
  // Fig. 7 shape: trap variant ~linear speed-up, NIZK sub-linear.
  GroupSimConfig config;
  config.group_size = config.threshold = 32;
  config.messages = 1024;
  config.hop_latency_seconds = 0;  // isolate compute scaling

  auto speedup = [&](Variant v, size_t cores) {
    config.variant = v;
    config.cores_per_server = 4;
    double base = EstimateGroupHop(config, SharedCosts()).compute_seconds;
    config.cores_per_server = cores;
    return base / EstimateGroupHop(config, SharedCosts()).compute_seconds;
  };
  double trap36 = speedup(Variant::kTrap, 36);
  double nizk36 = speedup(Variant::kNizk, 36);
  EXPECT_GT(trap36, 5.5);   // near-linear (ideal 9)
  EXPECT_LT(nizk36, trap36);  // NIZK strictly worse (sequential chain)
  EXPECT_GT(nizk36, 1.5);
}

TEST(GroupSim, RealExecutionTracksModel) {
  // Cross-validation: the model's compute estimate for a small hop should
  // be within a small factor of actually running GroupRuntime::RunHop.
  Rng rng(903u);
  DkgParams params{4, 4};
  GroupRuntime group(0, RunDkg(params, rng));
  GroupRuntime next(1, RunDkg(params, rng));

  const size_t n = 48;
  CiphertextBatch batch(n);
  for (size_t i = 0; i < n; i++) {
    Bytes payload = {static_cast<uint8_t>(i)};
    batch[i].push_back(
        ElGamalEncrypt(group.pk(), *EmbedMessage(BytesView(payload)), rng));
  }
  std::vector<Point> next_pks = {next.pk()};

  auto t0 = std::chrono::steady_clock::now();
  auto hop = group.RunHop(batch, next_pks, Variant::kTrap, rng);
  double real =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_FALSE(hop.aborted);

  GroupSimConfig config;
  config.group_size = config.threshold = 4;
  config.messages = n;
  config.components = 1;
  config.variant = Variant::kTrap;
  config.cores_per_server = 1;
  config.hop_latency_seconds = 0;  // in-process: no WAN
  double modeled = EstimateGroupHop(config, SharedCosts()).compute_seconds;

  EXPECT_GT(modeled, real * 0.25);
  EXPECT_LT(modeled, real * 4.0);
}

// --------------------------------------------------------------- net sim --

NetSimConfig BaseNetConfig(size_t servers, size_t messages) {
  NetSimConfig config;
  config.params.variant = Variant::kTrap;
  config.params.num_servers = servers;
  config.params.num_groups = servers;
  config.params.group_size = 33;
  config.params.honest_needed = 2;
  config.params.iterations = 10;
  config.total_messages = messages;
  config.components = 7;  // 160-byte microblog in the trap variant
  return config;
}

TEST(NetSim, LatencyLinearInMessages) {
  // Fig. 9 shape.
  Rng rng(904u);
  NetworkModel net = NetworkModel::TorLike(256, rng);
  auto at = [&](size_t m) {
    return EstimateRound(BaseNetConfig(256, m), net, SharedCosts())
        .total_seconds;
  };
  double t1 = at(250'000), t2 = at(500'000), t4 = at(1'000'000);
  EXPECT_GT(t2, t1 * 1.5);
  EXPECT_LT(t2, t1 * 2.5);
  EXPECT_GT(t4, t2 * 1.5);
  EXPECT_LT(t4, t2 * 2.5);
}

TEST(NetSim, NearLinearSpeedupTo1024) {
  // Fig. 10 shape: doubling servers halves latency (up to ~1024 servers).
  Rng rng(905u);
  double prev = 0;
  std::vector<double> totals;
  for (size_t servers : {128u, 256u, 512u, 1024u}) {
    NetworkModel net = NetworkModel::TorLike(servers, rng);
    totals.push_back(
        EstimateRound(BaseNetConfig(servers, 1'000'000), net, SharedCosts())
            .total_seconds);
  }
  for (size_t i = 1; i < totals.size(); i++) {
    double speedup = totals[i - 1] / totals[i];
    EXPECT_GT(speedup, 1.6) << "step " << i;
    EXPECT_LT(speedup, 2.4) << "step " << i;
  }
  prev = totals[0];
  EXPECT_GT(prev / totals.back(), 5.0);  // 128 -> 1024: ~8x ideal
}

TEST(NetSim, SubLinearSpeedupAtHugeScale) {
  // Fig. 11 shape: with 2^10 -> 2^15 servers on a billion messages the
  // speed-up falls clearly below the ideal 32x because of the G² connection
  // overhead (the paper reports 23.6x).
  Rng rng(906u);
  auto total = [&](size_t servers) {
    NetworkModel net = NetworkModel::TorLike(servers, rng);
    return EstimateRound(BaseNetConfig(servers, 1'000'000'000), net,
                         SharedCosts())
        .total_seconds;
  };
  double t10 = total(1 << 10);
  double t15 = total(1 << 15);
  double speedup = t10 / t15;
  EXPECT_GT(speedup, 12.0);  // still scaling...
  EXPECT_LT(speedup, 29.0);  // ...but well below the ideal 32x
}

TEST(NetSim, NizkVariantSlowerThanTrap) {
  Rng rng(907u);
  NetworkModel net = NetworkModel::TorLike(128, rng);
  NetSimConfig config = BaseNetConfig(128, 100'000);
  double trap = EstimateRound(config, net, SharedCosts()).total_seconds;
  config.params.variant = Variant::kNizk;
  config.components = 6;  // no KEM overhead in NIZK layout
  double nizk = EstimateRound(config, net, SharedCosts()).total_seconds;
  EXPECT_GT(nizk, trap * 1.5);
}

TEST(NetSim, PipeliningTradesLatencyForThroughput) {
  // §4.7: one batch per beat instead of per round. Throughput must improve
  // and approach T-fold at light (latency-bound) load; per-batch latency
  // must not improve.
  Rng rng(909u);
  NetworkModel net = NetworkModel::TorLike(256, rng);
  for (size_t messages : {10'000u, 500'000u}) {
    NetSimConfig config = BaseNetConfig(256, messages);
    auto seq = EstimateRound(config, net, SharedCosts());
    auto pipe = EstimatePipelined(config, net, SharedCosts());
    double seq_tput = static_cast<double>(messages) / seq.total_seconds;
    EXPECT_GT(pipe.throughput_msgs_per_second, seq_tput)
        << messages << " messages";
    EXPECT_LT(pipe.throughput_msgs_per_second,
              seq_tput * static_cast<double>(config.params.iterations) * 1.1);
    EXPECT_GE(pipe.latency_seconds, seq.total_seconds * 0.5);
  }
}

TEST(NetSim, PerServerBandwidthIsModest) {
  // §6.2: "Atom servers use less than 1 MB/sec of bandwidth".
  Rng rng(908u);
  NetworkModel net = NetworkModel::TorLike(1024, rng);
  auto est = EstimateRound(BaseNetConfig(1024, 1'000'000), net,
                           SharedCosts());
  EXPECT_LT(est.per_server_bytes_per_second, 20e6);
  EXPECT_GT(est.per_server_bytes_per_second, 1e3);
}

}  // namespace
}  // namespace atom
