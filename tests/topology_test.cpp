// Tests for the permutation-network topologies, group formation, and the
// Appendix-B group-size computation — including a statistical check that the
// square network actually mixes.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>
#include <set>

#include "src/topology/groups.h"
#include "src/topology/mixquality.h"
#include "src/topology/permnet.h"
#include "src/util/rng.h"

namespace atom {
namespace {

TEST(SquareTopology, CompleteBipartiteLayers) {
  SquareTopology topo(4, 10);
  EXPECT_EQ(topo.NumLayers(), 10u);
  EXPECT_EQ(topo.Width(), 4u);
  EXPECT_EQ(topo.Branching(), 4u);
  for (uint32_t v = 0; v < 4; v++) {
    auto nbrs = topo.Neighbors(0, v);
    EXPECT_EQ(nbrs, (std::vector<uint32_t>{0, 1, 2, 3}));
  }
}

TEST(ButterflyTopology, XorNeighbors) {
  ButterflyTopology topo(3, 2);  // 8 vertices, 6 layers
  EXPECT_EQ(topo.NumLayers(), 6u);
  EXPECT_EQ(topo.Width(), 8u);
  EXPECT_EQ(topo.Branching(), 2u);
  EXPECT_EQ(topo.Neighbors(0, 5), (std::vector<uint32_t>{5, 4}));
  EXPECT_EQ(topo.Neighbors(1, 5), (std::vector<uint32_t>{5, 7}));
  EXPECT_EQ(topo.Neighbors(2, 5), (std::vector<uint32_t>{5, 1}));
  // Second pass wraps the bit pattern.
  EXPECT_EQ(topo.Neighbors(3, 5), topo.Neighbors(0, 5));
}

// Simulates routing through a topology: each vertex shuffles its batch and
// deals it round-robin to its neighbours. Returns the final position of each
// message.
std::vector<size_t> RouteOnce(const Topology& topo, size_t messages_per_vertex,
                              Rng& rng) {
  size_t width = topo.Width();
  size_t m = width * messages_per_vertex;
  std::vector<std::vector<size_t>> at(width);
  for (size_t i = 0; i < m; i++) {
    at[i / messages_per_vertex].push_back(i);
  }
  for (size_t layer = 0; layer < topo.NumLayers(); layer++) {
    std::vector<std::vector<size_t>> next(width);
    for (uint32_t v = 0; v < width; v++) {
      auto& batch = at[v];
      // Shuffle within the vertex.
      for (size_t i = batch.size(); i > 1; i--) {
        std::swap(batch[i - 1], batch[rng.NextBelow(i)]);
      }
      auto nbrs = topo.Neighbors(layer, v);
      for (size_t i = 0; i < batch.size(); i++) {
        next[nbrs[i % nbrs.size()]].push_back(batch[i]);
      }
    }
    at = std::move(next);
  }
  std::vector<size_t> position(m);
  size_t pos = 0;
  for (uint32_t v = 0; v < width; v++) {
    for (size_t id : at[v]) {
      position[id] = pos++;
    }
  }
  return position;
}

TEST(SquareTopology, ProducesWellMixedPermutation) {
  // Statistical sanity for the Håstad network: over many runs, a tracked
  // message should land near-uniformly across all positions. We check that
  // every message can reach every *vertex* and that the chi-squared statistic
  // over exit vertices is sane.
  SquareTopology topo(4, 10);
  Rng rng(600u);
  constexpr int kRuns = 2000;
  constexpr size_t kPerVertex = 4;  // 16 messages
  std::vector<int> exit_vertex_count(4, 0);
  for (int run = 0; run < kRuns; run++) {
    auto pos = RouteOnce(topo, kPerVertex, rng);
    exit_vertex_count[pos[0] / kPerVertex]++;
  }
  // Expected 500 per vertex; allow generous 5-sigma-ish slack (sigma ~ 19).
  for (int count : exit_vertex_count) {
    EXPECT_GT(count, 380);
    EXPECT_LT(count, 620);
  }
}

TEST(Routing, PreservesAllMessages) {
  for (const Topology* topo :
       std::initializer_list<const Topology*>{
           new SquareTopology(8, 10), new ButterflyTopology(3, 5)}) {
    Rng rng(601u);
    auto pos = RouteOnce(*topo, 16, rng);
    std::set<size_t> seen(pos.begin(), pos.end());
    EXPECT_EQ(seen.size(), pos.size());  // a true permutation: no losses
    delete topo;
  }
}

TEST(MixQualityTest, SquareNetworkConvergesInFewIterations) {
  // Håstad O(1): the joint pair distribution must be near-ideal after a few
  // iterations, while a single iteration leaves visible correlations.
  Rng rng(650u);
  SquareTopology shallow(4, 1);
  SquareTopology deep(4, 4);
  auto q1 = MeasureMixQuality(shallow, 4, 2500, rng);
  auto q4 = MeasureMixQuality(deep, 4, 2500, rng);
  EXPECT_GT(q1.joint_tv, 0.12);   // T=1: strongly correlated pairs
  EXPECT_LT(q4.joint_tv, 0.07);   // T=4: at/near the sampling noise floor
  EXPECT_LT(q4.joint_tv, q1.joint_tv * 0.5);
}

TEST(MixQualityTest, SingleButterflyPassIsNotUniform) {
  // Czumaj-Vöcking: one butterfly pass is far from a random permutation;
  // iterating fixes it.
  Rng rng(651u);
  ButterflyTopology one_pass(3, 1);
  ButterflyTopology many_pass(3, 4);
  auto q1 = MeasureMixQuality(one_pass, 2, 2500, rng);
  auto qn = MeasureMixQuality(many_pass, 2, 2500, rng);
  EXPECT_GT(q1.joint_tv, 0.3);
  EXPECT_LT(qn.joint_tv, 0.12);
}

TEST(MixQualityTest, MarginalsAreUniformEvenWhenJointIsNot) {
  // The round-robin deal makes single-element marginals look fine at T=1;
  // only the joint statistic exposes the weak mixing. This is why the
  // module measures both.
  Rng rng(652u);
  SquareTopology shallow(4, 1);
  auto q = MeasureMixQuality(shallow, 4, 2500, rng);
  EXPECT_LT(q.marginal_tv, 0.06);
  EXPECT_GT(q.joint_tv, 0.12);
}

// ---------------------------------------------------------- group sizing --

TEST(GroupSize, MatchesPaperAnytrustExample) {
  // §4.1: f = 20%, G = 1024, h = 1 → k = 32.
  EXPECT_EQ(MinGroupSize(0.2, 1024, 1), 32u);
}

TEST(GroupSize, MonotoneInH) {
  size_t prev = 0;
  for (size_t h = 1; h <= 20; h++) {
    size_t k = MinGroupSize(0.2, 1024, h);
    EXPECT_GE(k, prev);
    EXPECT_GE(k, h);  // must at least contain h honest servers
    prev = k;
  }
  // Fig. 13 range check: k stays under ~75 for h <= 20 at f=0.2.
  EXPECT_LE(prev, 75u);
}

TEST(GroupSize, GrowsWithAdversaryFraction) {
  EXPECT_LT(MinGroupSize(0.1, 1024, 1), MinGroupSize(0.2, 1024, 1));
  EXPECT_LT(MinGroupSize(0.2, 1024, 1), MinGroupSize(0.3, 1024, 1));
}

TEST(GroupSize, GrowsWithGroupCount) {
  EXPECT_LE(MinGroupSize(0.2, 128, 1), MinGroupSize(0.2, 1 << 15, 1));
}

TEST(GroupSize, ProbabilityComputationSane) {
  // For k = 32, f = 0.2, h = 1: log2(0.2^32) = 32*log2(0.2) ≈ -74.3.
  EXPECT_NEAR(Log2ProbGroupBad(32, 0.2, 1), 32 * std::log2(0.2), 1e-6);
  // Adding the h=2 term makes the group more likely to be bad.
  EXPECT_GT(Log2ProbGroupBad(32, 0.2, 2), Log2ProbGroupBad(32, 0.2, 1));
}

// -------------------------------------------------------- group formation --

TEST(FormGroupsTest, DeterministicInBeacon) {
  Bytes beacon1 = ToBytes("round-42-beacon");
  Bytes beacon2 = ToBytes("round-43-beacon");
  auto a = FormGroups(100, 16, 5, BytesView(beacon1));
  auto b = FormGroups(100, 16, 5, BytesView(beacon1));
  auto c = FormGroups(100, 16, 5, BytesView(beacon2));
  EXPECT_EQ(a.groups, b.groups);
  EXPECT_NE(a.groups, c.groups);
}

TEST(FormGroupsTest, GroupsHaveDistinctMembers) {
  Bytes beacon = ToBytes("beacon");
  auto layout = FormGroups(50, 20, 10, BytesView(beacon));
  ASSERT_EQ(layout.groups.size(), 20u);
  for (const auto& g : layout.groups) {
    ASSERT_EQ(g.size(), 10u);
    std::set<uint32_t> distinct(g.begin(), g.end());
    EXPECT_EQ(distinct.size(), g.size());
    for (uint32_t s : g) {
      EXPECT_LT(s, 50u);
    }
  }
}

TEST(FormGroupsTest, AllServersUsedWhenGroupIsWholeNetwork) {
  Bytes beacon = ToBytes("beacon");
  auto layout = FormGroups(8, 2, 8, BytesView(beacon));
  for (const auto& g : layout.groups) {
    std::set<uint32_t> distinct(g.begin(), g.end());
    EXPECT_EQ(distinct.size(), 8u);
  }
}

TEST(FormGroupsTest, StaggeringRotatesPositions) {
  // With enough groups, some server must appear at different positions in
  // different groups (§4.7 idle-time optimization).
  Bytes beacon = ToBytes("stagger-test");
  auto layout = FormGroups(16, 32, 8, BytesView(beacon));
  std::map<uint32_t, std::set<size_t>> positions;
  for (const auto& g : layout.groups) {
    for (size_t pos = 0; pos < g.size(); pos++) {
      positions[g[pos]].insert(pos);
    }
  }
  size_t multi_position = 0;
  for (const auto& [server, pos_set] : positions) {
    if (pos_set.size() > 1) {
      multi_position++;
    }
  }
  EXPECT_GT(multi_position, 8u);
}

TEST(FormGroupsTest, LoadIsBalanced) {
  // Random sampling should spread membership roughly evenly.
  Bytes beacon = ToBytes("load");
  auto layout = FormGroups(64, 64, 16, BytesView(beacon));
  std::vector<int> load(64, 0);
  for (const auto& g : layout.groups) {
    for (uint32_t s : g) {
      load[s]++;
    }
  }
  // Expected load = 16 groups per server; no server should be wildly off.
  for (int l : load) {
    EXPECT_GT(l, 4);
    EXPECT_LT(l, 32);
  }
}

}  // namespace
}  // namespace atom
