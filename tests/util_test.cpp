// Unit tests for src/util: hex, byte helpers, serialization, RNG, parallel.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>

#include "src/util/bytes.h"
#include "src/util/hex.h"
#include "src/util/parallel.h"
#include "src/util/rng.h"
#include "src/util/serde.h"

namespace atom {
namespace {

TEST(Hex, RoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  std::string hex = HexEncode(BytesView(data));
  EXPECT_EQ(hex, "0001abff7f");
  auto back = HexDecode(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Hex, DecodeUppercase) {
  auto out = HexDecode("DEADBEEF");
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Hex, DecodeRejectsOddLength) {
  EXPECT_FALSE(HexDecode("abc").has_value());
}

TEST(Hex, DecodeRejectsNonHex) {
  EXPECT_FALSE(HexDecode("zz").has_value());
}

TEST(Hex, EmptyString) {
  EXPECT_EQ(HexEncode(BytesView()), "");
  auto out = HexDecode("");
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

TEST(Bytes, Concat) {
  Bytes a = {1, 2}, b = {3}, c;
  Bytes out = Concat({BytesView(a), BytesView(b), BytesView(c)});
  EXPECT_EQ(out, (Bytes{1, 2, 3}));
}

TEST(Bytes, ConstantTimeEqual) {
  Bytes a = {1, 2, 3}, b = {1, 2, 3}, c = {1, 2, 4}, d = {1, 2};
  EXPECT_TRUE(ConstantTimeEqual(BytesView(a), BytesView(b)));
  EXPECT_FALSE(ConstantTimeEqual(BytesView(a), BytesView(c)));
  EXPECT_FALSE(ConstantTimeEqual(BytesView(a), BytesView(d)));
}

TEST(Serde, PrimitivesRoundTrip) {
  ByteWriter w;
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.Var(Bytes{9, 8, 7});
  Bytes buf = w.Take();

  ByteReader r{BytesView(buf)};
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0x1234);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.Var(), (Bytes{9, 8, 7}));
  EXPECT_TRUE(r.Done());
}

TEST(Serde, ReaderFailsOnTruncation) {
  Bytes buf = {1, 2, 3};
  ByteReader r{BytesView(buf)};
  EXPECT_FALSE(r.U32().has_value());
}

TEST(Serde, VarFailsOnBadLength) {
  ByteWriter w;
  w.U32(1000);  // claims 1000 bytes follow; none do
  Bytes buf = w.Take();
  ByteReader r{BytesView(buf)};
  EXPECT_FALSE(r.Var().has_value());
}

TEST(Rng, Deterministic) {
  Rng a(42u), b(42u);
  EXPECT_EQ(a.NextBytes(64), b.NextBytes(64));
  EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1u), b(2u);
  EXPECT_NE(a.NextBytes(32), b.NextBytes(32));
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7u);
  for (int i = 0; i < 1000; i++) {
    EXPECT_LT(rng.NextBelow(10), 10u);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(7u);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; i++) {
    seen.insert(rng.NextBelow(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ForkIndependent) {
  Rng parent(3u);
  Rng child = parent.Fork();
  // The child stream differs from the parent's continued stream.
  EXPECT_NE(parent.NextBytes(32), child.NextBytes(32));
}

TEST(Parallel, RunsAllIndices) {
  std::vector<std::atomic<int>> hits(100);
  ParallelFor(4, 100, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(Parallel, InlineWhenSingleWorker) {
  std::vector<int> hits(10, 0);  // not atomic: must run on caller thread
  ParallelFor(1, 10, [&](size_t i) { hits[i]++; });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(Parallel, ZeroIterations) {
  ParallelFor(4, 0, [](size_t) { FAIL(); });
}

TEST(Parallel, MoreWorkersThanWork) {
  std::vector<std::atomic<int>> hits(3);
  ParallelFor(16, 3, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(Parallel, RethrowsFirstWorkerException) {
  // A throw from fn(i) on a pool thread must surface on the caller, not
  // terminate the process.
  EXPECT_THROW(ParallelFor(4, 100,
                           [&](size_t i) {
                             if (i == 37) {
                               throw std::runtime_error("worker boom");
                             }
                           }),
               std::runtime_error);
  // The shared pool is still usable afterwards.
  std::atomic<int> count{0};
  ParallelFor(4, 50, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
}

TEST(Parallel, RethrowsInlineException) {
  EXPECT_THROW(
      ParallelFor(1, 10, [](size_t) { throw std::runtime_error("inline"); }),
      std::runtime_error);
}

// Sync state for tasks that outlive the test scope briefly: heap-shared so
// a task blocked on mu while the waiter already returned cannot touch a
// destroyed mutex.
struct TaskSync {
  std::mutex mu;
  std::condition_variable cv;
  size_t done = 0;  // guarded by mu
  std::atomic<size_t> total{0};
};

TEST(ThreadPoolTest, SubmittedTasksAllRun) {
  auto sync = std::make_shared<TaskSync>();
  constexpr size_t kTasks = 64;
  for (size_t t = 0; t < kTasks; t++) {
    ThreadPool::Shared().Submit([sync] {
      std::lock_guard<std::mutex> lock(sync->mu);
      if (++sync->done == kTasks) {
        sync->cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(sync->mu);
  sync->cv.wait(lock, [&] { return sync->done == kTasks; });
  EXPECT_EQ(sync->done, kTasks);
}

TEST(ThreadPoolTest, NestedParallelForFromPoolTasksCompletes) {
  // Hop tasks run ParallelFor from inside pool threads; the caller
  // participates in its own region, so this must not deadlock even when
  // every pool thread is occupied by an outer task.
  const size_t outer = ThreadPool::Shared().num_threads() + 2;
  auto sync = std::make_shared<TaskSync>();
  for (size_t t = 0; t < outer; t++) {
    ThreadPool::Shared().Submit([sync, outer] {
      ParallelFor(4, 25, [&](size_t) { sync->total.fetch_add(1); });
      std::lock_guard<std::mutex> lock(sync->mu);
      if (++sync->done == outer) {
        sync->cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(sync->mu);
  sync->cv.wait(lock, [&] { return sync->done == outer; });
  EXPECT_EQ(sync->total.load(), outer * 25);
}

TEST(ThreadPoolTest, DedicatedPoolDrainsOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int t = 0; t < 16; t++) {
      pool.Submit([&] { count.fetch_add(1); });
    }
  }  // destructor drains the queue before joining
  EXPECT_EQ(count.load(), 16);
}

}  // namespace
}  // namespace atom
